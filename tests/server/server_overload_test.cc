#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/job_runner.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "server/server_test_client.h"
#include "util/json.h"

namespace gva {
namespace {

using ::gva::testing::HttpGet;
using ::gva::testing::SendHttpRequest;
using ::gva::testing::TestHttpResponse;

/// A long-running job body: exact RRA over a large structured series. The
/// exact nearest-neighbor verification phase is O(candidates * n) distance
/// work, and RRA polls the cancellation token between candidates — slow to
/// finish, quick to cancel. The composed waveform keeps Sequitur busy with
/// real structure instead of collapsing to one rule.
std::string LongJobBody() {
  const size_t n = 60000;
  std::string body =
      R"({"detector": "rra", "window": 256, "paa": 8, "alphabet": 4,)"
      R"( "series": [)";
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    const double value = std::sin(t * 0.031) + 0.6 * std::sin(t * 0.0077) +
                         0.25 * std::sin(t * 0.173);
    if (i != 0) {
      body += ",";
    }
    body += JsonNumber(value);
  }
  body += "]}";
  return body;
}

/// A cheap job body that finishes in milliseconds once it gets a slot.
std::string QuickJobBody() {
  std::string body =
      R"({"detector": "density", "window": 32, "paa": 4, "alphabet": 4,)"
      R"( "series": [)";
  for (size_t i = 0; i < 400; ++i) {
    if (i != 0) {
      body += ",";
    }
    body += JsonNumber(std::sin(static_cast<double>(i) * 0.2));
  }
  body += "]}";
  return body;
}

uint64_t JobIdOf(const TestHttpResponse& response) {
  auto doc = ParseJson(response.body);
  if (!doc.ok() || doc->Find("id") == nullptr) {
    return 0;
  }
  return static_cast<uint64_t>(doc->Find("id")->as_number());
}

std::string JobState(uint16_t port, uint64_t id) {
  const TestHttpResponse response =
      HttpGet(port, "/v1/jobs/" + std::to_string(id));
  auto doc = ParseJson(response.body);
  if (!doc.ok() || doc->Find("state") == nullptr) {
    return "";
  }
  return doc->Find("state")->as_string();
}

// One slot, a two-deep queue: fill both, pin the 429 + Retry-After
// overload answer, watch /healthz report the live queue, then cancel the
// running job mid-search and watch the slot free and the queue drain.
TEST(ServerOverloadTest, QueueFillRejectionAndMidSearchCancellation) {
  net::AnomalyServerOptions options;
  options.runner.slots = 1;
  options.runner.queue_capacity = 2;
  auto started = net::AnomalyServer::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<net::AnomalyServer> server = std::move(started).value();
  const uint16_t port = server->port();
  JobRunner& runner = server->runner();
  obs::Counter& cancelled_metric =
      obs::GlobalMetrics().counter("server.jobs.cancelled");
  const uint64_t cancelled_metric_before =
      static_cast<uint64_t>(cancelled_metric.value());

  // Job 1 occupies the only slot. Wait until it is actually running so the
  // queue arithmetic below is exact.
  const std::string long_body = LongJobBody();
  const TestHttpResponse first =
      SendHttpRequest(port, "POST", "/v1/jobs", long_body);
  ASSERT_EQ(first.status, 202) << first.body;
  const uint64_t running_id = JobIdOf(first);
  ASSERT_NE(running_id, 0u);
  while (JobState(port, running_id) == "queued") {
    std::this_thread::yield();
  }
  ASSERT_EQ(JobState(port, running_id), "running");

  // Jobs 2 and 3 fill the queue.
  const TestHttpResponse second =
      SendHttpRequest(port, "POST", "/v1/jobs", QuickJobBody());
  ASSERT_EQ(second.status, 202);
  const TestHttpResponse third =
      SendHttpRequest(port, "POST", "/v1/jobs", QuickJobBody());
  ASSERT_EQ(third.status, 202);
  EXPECT_EQ(runner.queue_depth(), 2u);

  // Job 4 finds the queue full: 429, Retry-After, and the rejection
  // counter ticks. Nothing was enqueued.
  const TestHttpResponse rejected =
      SendHttpRequest(port, "POST", "/v1/jobs", QuickJobBody());
  ASSERT_EQ(rejected.status, 429) << rejected.body;
  const std::string* retry_after = rejected.FindHeader("retry-after");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_EQ(*retry_after, "1");
  EXPECT_NE(rejected.body.find("queue"), std::string::npos);
  EXPECT_EQ(runner.jobs_rejected(), 1u);
  EXPECT_EQ(runner.queue_depth(), 2u);

  // /healthz reflects the live scheduling state under load.
  const TestHttpResponse health = HttpGet(port, "/healthz");
  ASSERT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"server_slots_busy\": 1"), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"server_queue_depth\": 2"), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"server_jobs_rejected\": 1"),
            std::string::npos);

  // Cancelling a queued job frees its queue seat immediately.
  const uint64_t queued_id = JobIdOf(third);
  TestHttpResponse cancel = SendHttpRequest(
      port, "DELETE", "/v1/jobs/" + std::to_string(queued_id));
  ASSERT_EQ(cancel.status, 200) << cancel.body;
  auto cancel_doc = ParseJson(cancel.body);
  ASSERT_TRUE(cancel_doc.ok());
  EXPECT_EQ(cancel_doc->Find("state")->as_string(), "cancelled");
  EXPECT_EQ(runner.queue_depth(), 1u);

  // Cancelling the running job interrupts the RRA search: the slot frees
  // long before the search could have finished, and the queued quick job
  // then runs to completion.
  cancel = SendHttpRequest(port, "DELETE",
                           "/v1/jobs/" + std::to_string(running_id));
  ASSERT_EQ(cancel.status, 200);
  while (JobState(port, running_id) == "running") {
    std::this_thread::yield();
  }
  EXPECT_EQ(JobState(port, running_id), "cancelled");

  const uint64_t surviving_id = JobIdOf(second);
  std::string state = JobState(port, surviving_id);
  while (state == "queued" || state == "running") {
    std::this_thread::yield();
    state = JobState(port, surviving_id);
  }
  EXPECT_EQ(state, "done");

  EXPECT_EQ(runner.jobs_cancelled(), 2u);
  EXPECT_EQ(runner.jobs_completed(), 1u);
  EXPECT_EQ(runner.slots_busy(), 0u);
  EXPECT_EQ(runner.queue_depth(), 0u);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(static_cast<uint64_t>(cancelled_metric.value()),
              cancelled_metric_before + 2);
  }

  // Idempotent: cancelling a finished job reports its terminal state.
  cancel = SendHttpRequest(port, "DELETE",
                           "/v1/jobs/" + std::to_string(surviving_id));
  EXPECT_EQ(cancel.status, 200);
  cancel_doc = ParseJson(cancel.body);
  ASSERT_TRUE(cancel_doc.ok());
  EXPECT_EQ(cancel_doc->Find("state")->as_string(), "done");
  EXPECT_EQ(runner.jobs_cancelled(), 2u);

  server->Stop();
}

// Shutdown while a job is mid-search: Stop() flags every live job and
// joins the workers — it must come back promptly, not after the search
// would have finished naturally.
TEST(ServerOverloadTest, StopCancelsRunningJobs) {
  net::AnomalyServerOptions options;
  options.runner.slots = 1;
  auto started = net::AnomalyServer::Start(options);
  ASSERT_TRUE(started.ok());
  std::unique_ptr<net::AnomalyServer> server = std::move(started).value();

  const TestHttpResponse submitted =
      SendHttpRequest(server->port(), "POST", "/v1/jobs", LongJobBody());
  ASSERT_EQ(submitted.status, 202);
  const uint64_t id = JobIdOf(submitted);
  while (JobState(server->port(), id) == "queued") {
    std::this_thread::yield();
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(2);
  server->Stop();
  EXPECT_LT(std::chrono::steady_clock::now(), deadline)
      << "Stop() waited for the full search instead of cancelling it";
  EXPECT_EQ(server->runner().jobs_cancelled(), 1u);
}

// Stream sessions are capped: the max_streams+1'th create is answered 429
// (resource exhaustion, not a client error), and deleting one readmits.
TEST(ServerOverloadTest, StreamCapIsEnforced) {
  net::AnomalyServerOptions options;
  options.max_streams = 2;
  auto started = net::AnomalyServer::Start(options);
  ASSERT_TRUE(started.ok());
  std::unique_ptr<net::AnomalyServer> server = std::move(started).value();
  const uint16_t port = server->port();
  const std::string config = R"({"window": 64, "paa": 4, "alphabet": 4})";

  EXPECT_EQ(SendHttpRequest(port, "POST", "/v1/streams/a", config).status,
            201);
  EXPECT_EQ(SendHttpRequest(port, "POST", "/v1/streams/b", config).status,
            201);
  const TestHttpResponse over =
      SendHttpRequest(port, "POST", "/v1/streams/c", config);
  EXPECT_EQ(over.status, 429);
  EXPECT_EQ(SendHttpRequest(port, "DELETE", "/v1/streams/a").status, 200);
  EXPECT_EQ(SendHttpRequest(port, "POST", "/v1/streams/c", config).status,
            201);
  server->Stop();
}

}  // namespace
}  // namespace gva
