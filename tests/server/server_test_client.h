#ifndef GVA_TESTS_SERVER_SERVER_TEST_CLIENT_H_
#define GVA_TESTS_SERVER_SERVER_TEST_CLIENT_H_

/// Raw-socket HTTP test client for the gva_serverd integration suites. One
/// request per connection (it sends `Connection: close` and reads to EOF),
/// deliberately independent of src/net so a server-side parser bug cannot
/// cancel out in the tests.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace gva::testing {

struct TestHttpResponse {
  /// Transport-level success: connected, wrote the request, read a
  /// well-formed status line.
  bool ok = false;
  int status = 0;
  /// Header names lowercased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* FindHeader(const std::string& name) const {
    for (const auto& [key, value] : headers) {
      if (key == name) {
        return &value;
      }
    }
    return nullptr;
  }
};

/// Sends one HTTP/1.1 request to 127.0.0.1:port and reads the full
/// response. `extra_headers` are appended verbatim ("Name: value" pairs).
inline TestHttpResponse SendHttpRequest(
    uint16_t port, const std::string& method, const std::string& target,
    const std::string& body = std::string(),
    const std::vector<std::pair<std::string, std::string>>& extra_headers =
        {}) {
  TestHttpResponse out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return out;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return out;
  }

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: localhost\r\n";
  for (const auto& [name, value] : extra_headers) {
    request += name + ": " + value + "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "Connection: close\r\n\r\n";
  request += body;

  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return out;
    }
    off += static_cast<size_t>(n);
  }

  std::string raw;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      break;
    }
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  // Status line: HTTP/1.1 NNN reason
  const size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || raw.rfind("HTTP/1.", 0) != 0) {
    return out;
  }
  const size_t space = raw.find(' ');
  if (space == std::string::npos || space + 4 > line_end) {
    return out;
  }
  out.status = std::atoi(raw.c_str() + space + 1);

  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return out;
  }
  size_t cursor = line_end + 2;
  while (cursor < header_end) {
    size_t next = raw.find("\r\n", cursor);
    if (next == std::string::npos || next > header_end) {
      next = header_end;
    }
    const std::string line = raw.substr(cursor, next - cursor);
    cursor = next + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    std::string name = line.substr(0, colon);
    for (char& c : name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    size_t value_start = colon + 1;
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    out.headers.emplace_back(std::move(name), line.substr(value_start));
  }
  out.body = raw.substr(header_end + 4);
  out.ok = true;
  return out;
}

inline TestHttpResponse HttpGet(uint16_t port, const std::string& target) {
  return SendHttpRequest(port, "GET", target);
}

}  // namespace gva::testing

#endif  // GVA_TESTS_SERVER_SERVER_TEST_CLIENT_H_
