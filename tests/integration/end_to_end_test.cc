// Integration tests: the full pipeline (generator -> SAX -> Sequitur ->
// detectors) on every synthetic dataset, asserting the paper's qualitative
// claims — planted anomalies are found, and the distance-call ordering
// RRA < HOTSAX << brute force holds.

#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/rra.h"
#include "core/rule_density_detector.h"
#include "datasets/ecg.h"
#include "datasets/power_demand.h"
#include "datasets/respiration.h"
#include "datasets/simple.h"
#include "datasets/tek.h"
#include "datasets/trajectory.h"
#include "datasets/video.h"
#include "discord/brute_force.h"
#include "discord/hotsax.h"

namespace gva {
namespace {

struct Scenario {
  std::string name;
  LabeledSeries data;
};

std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> scenarios;
  {
    EcgOptions o;
    o.num_beats = 50;
    o.anomalous_beats = {30};
    scenarios.push_back({"ecg", MakeEcg(o)});
  }
  {
    PowerDemandOptions o;
    o.weeks = 20;
    o.holiday_days = {59};  // Thursday of week 8
    scenarios.push_back({"power", MakePowerDemand(o)});
  }
  {
    VideoOptions o;
    o.num_cycles = 22;
    o.anomalous_cycles = {12};
    scenarios.push_back({"video", MakeVideo(o)});
  }
  {
    TekOptions o;
    o.num_cycles = 18;
    o.anomalous_cycles = {9};
    scenarios.push_back({"tek", MakeTek(o)});
  }
  {
    RespirationOptions o;
    scenarios.push_back({"respiration", MakeRespiration(o)});
  }
  return scenarios;
}

class EndToEndTest : public ::testing::TestWithParam<size_t> {
 protected:
  static const Scenario& scenario() {
    static const std::vector<Scenario>* scenarios =
        new std::vector<Scenario>(MakeScenarios());
    return (*scenarios)[GetParam()];
  }
};

TEST_P(EndToEndTest, RraFindsPlantedAnomaly) {
  const Scenario& s = scenario();
  RraOptions opts;
  opts.sax = s.data.recommended;
  opts.top_k = 2;
  auto detection = FindRraDiscords(s.data.series, opts);
  ASSERT_TRUE(detection.ok()) << s.name;
  ASSERT_FALSE(detection->result.discords.empty()) << s.name;
  std::vector<Interval> found;
  for (const DiscordRecord& d : detection->result.discords) {
    found.push_back(d.span());
  }
  EXPECT_GT(Recall(found, s.data.anomalies, opts.sax.window), 0.0)
      << s.name << ": none of the top discords hit the planted anomaly";
}

TEST_P(EndToEndTest, DensityCurveDipsAtPlantedAnomaly) {
  const Scenario& s = scenario();
  DensityAnomalyOptions density_opts;
  density_opts.threshold_fraction = 0.1;
  auto detection =
      DetectDensityAnomalies(s.data.series, s.data.recommended, density_opts);
  ASSERT_TRUE(detection.ok()) << s.name;
  ASSERT_FALSE(detection->anomalies.empty()) << s.name;
  std::vector<Interval> found;
  for (const DensityAnomaly& a : detection->anomalies) {
    found.push_back(a.span);
  }
  EXPECT_GT(Recall(found, s.data.anomalies, s.data.recommended.window), 0.0)
      << s.name;
}

TEST_P(EndToEndTest, CallOrderingRraBelowHotSaxBelowBruteForce) {
  const Scenario& s = scenario();
  RraOptions rra_opts;
  rra_opts.sax = s.data.recommended;
  auto rra = FindRraDiscords(s.data.series, rra_opts);
  HotSaxOptions hot_opts;
  hot_opts.sax = s.data.recommended;
  auto hot = FindDiscordsHotSax(s.data.series, hot_opts);
  ASSERT_TRUE(rra.ok()) << s.name;
  ASSERT_TRUE(hot.ok()) << s.name;
  const uint64_t brute =
      BruteForceCallCount(s.data.series.size(), s.data.recommended.window);
  EXPECT_LT(rra->result.distance_calls, hot->distance_calls) << s.name;
  EXPECT_LT(hot->distance_calls, brute / 10) << s.name;
}

INSTANTIATE_TEST_SUITE_P(Datasets, EndToEndTest,
                         ::testing::Range<size_t>(0, 5));

TEST(TrajectoryEndToEndTest, DensityFindsDetour) {
  TrajectoryOptions opts;
  TrajectoryData data = MakeTrajectory(opts);
  DensityAnomalyOptions density_opts;
  density_opts.threshold_fraction = 0.05;
  density_opts.min_length = 4;
  auto detection = DetectDensityAnomalies(
      data.labeled.series, data.labeled.recommended, density_opts);
  ASSERT_TRUE(detection.ok());
  ASSERT_FALSE(detection->anomalies.empty());
  std::vector<Interval> found;
  for (const DensityAnomaly& a : detection->anomalies) {
    found.push_back(a.span);
  }
  // The detour (first ground-truth interval) is the density method's target.
  EXPECT_TRUE(HitsAnyTruth(data.labeled.anomalies[0], found,
                           data.labeled.recommended.window))
      << "density curve missed the detour";
}

TEST(TrajectoryEndToEndTest, RraFindsAnAnomalousTrip) {
  TrajectoryOptions opts;
  TrajectoryData data = MakeTrajectory(opts);
  RraOptions rra_opts;
  rra_opts.sax = data.labeled.recommended;
  rra_opts.top_k = 3;
  auto detection = FindRraDiscords(data.labeled.series, rra_opts);
  ASSERT_TRUE(detection.ok());
  ASSERT_FALSE(detection->result.discords.empty());
  std::vector<Interval> found;
  for (const DiscordRecord& d : detection->result.discords) {
    found.push_back(d.span());
  }
  EXPECT_GT(Recall(found, data.labeled.anomalies,
                   data.labeled.recommended.window),
            0.0);
}

// The paper's headline qualitative claim, end to end on the ECG data: both
// detectors point at the same planted beat that HOTSAX (exact baseline)
// finds.
TEST(AgreementTest, AllThreeDetectorsAgreeOnEcg) {
  EcgOptions o;
  o.num_beats = 45;
  o.anomalous_beats = {25};
  LabeledSeries data = MakeEcg(o);
  SaxOptions sax = data.recommended;

  HotSaxOptions hot_opts;
  hot_opts.sax = sax;
  auto hot = FindDiscordsHotSax(data.series, hot_opts);
  RraOptions rra_opts;
  rra_opts.sax = sax;
  auto rra = FindRraDiscords(data.series, rra_opts);
  auto density = DetectDensityAnomalies(data.series, sax, {});
  ASSERT_TRUE(hot.ok());
  ASSERT_TRUE(rra.ok());
  ASSERT_TRUE(density.ok());

  const Interval truth = data.anomalies[0];
  EXPECT_TRUE(hot->discords[0].span().Overlaps(truth));
  EXPECT_TRUE(rra->result.discords[0].span().Overlaps(truth));
  ASSERT_FALSE(density->anomalies.empty());
  const Interval widened{truth.start >= sax.window
                             ? truth.start - sax.window
                             : 0,
                         truth.end + sax.window};
  EXPECT_TRUE(density->anomalies[0].span.Overlaps(widened));
}

}  // namespace
}  // namespace gva
