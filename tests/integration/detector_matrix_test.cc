// Cross-product integration matrix: every detector exposed through the
// unified interface, on every synthetic dataset family, must run cleanly
// and produce ranked, in-bounds anomalies. Hit requirements are asserted
// only for the grammar-driven detectors (the paper's contribution); the
// related-work baselines must merely behave (they are known to be weaker —
// that is the paper's point).

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/evaluate.h"
#include "datasets/ecg.h"
#include "datasets/power_demand.h"
#include "datasets/respiration.h"
#include "datasets/tek.h"
#include "datasets/video.h"

namespace gva {
namespace {

struct MatrixCase {
  std::string dataset;
  std::string detector;
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string name = info.param.dataset + "_" + info.param.detector;
  for (char& c : name) {
    if (c == '-') {
      c = '_';  // gtest parameter names must be alphanumeric/underscore
    }
  }
  return name;
}

LabeledSeries MakeDataset(const std::string& name) {
  if (name == "ecg") {
    EcgOptions o;
    o.num_beats = 40;
    o.anomalous_beats = {25};
    return MakeEcg(o);
  }
  if (name == "power") {
    PowerDemandOptions o;
    o.weeks = 16;
    o.holiday_days = {52};
    return MakePowerDemand(o);
  }
  if (name == "video") {
    VideoOptions o;
    o.num_cycles = 20;
    o.anomalous_cycles = {11};
    return MakeVideo(o);
  }
  if (name == "tek") {
    TekOptions o;
    o.num_cycles = 16;
    o.anomalous_cycles = {8};
    return MakeTek(o);
  }
  RespirationOptions o;
  return MakeRespiration(o);
}

class DetectorMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(DetectorMatrixTest, RunsAndProducesSaneRankedAnomalies) {
  const MatrixCase& param = GetParam();
  LabeledSeries data = MakeDataset(param.dataset);
  auto detector = MakeDetectorByName(param.detector, data.recommended);
  ASSERT_TRUE(detector.ok());

  auto detection = (*detector)->Detect(data.series, 3);
  ASSERT_TRUE(detection.ok()) << detection.status();
  ASSERT_FALSE(detection->anomalies.empty());
  for (size_t i = 0; i < detection->anomalies.size(); ++i) {
    const UnifiedAnomaly& a = detection->anomalies[i];
    EXPECT_LE(a.span.end, data.series.size());
    EXPECT_GT(a.span.length(), 0u);
    EXPECT_EQ(a.rank, i);
    if (i > 0) {
      EXPECT_GE(detection->anomalies[i - 1].score, a.score);
    }
  }

  // The grammar-driven detectors must find the planted anomaly.
  if (param.detector == "rule-density" || param.detector == "rra") {
    std::vector<Interval> found;
    for (const UnifiedAnomaly& a : detection->anomalies) {
      found.push_back(a.span);
    }
    EXPECT_GT(Recall(found, data.anomalies, data.recommended.window), 0.0)
        << param.dataset << " / " << param.detector;
  }
}

std::vector<MatrixCase> AllCases() {
  std::vector<MatrixCase> cases;
  for (const char* dataset :
       {"ecg", "power", "video", "tek", "respiration"}) {
    for (const std::string& detector : AvailableDetectors()) {
      cases.push_back({dataset, detector});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, DetectorMatrixTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace gva
