#include "timeseries/rolling_stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/simple.h"
#include "timeseries/stats.h"
#include "util/rng.h"

namespace gva {
namespace {

TEST(RollingStatsTest, SumsMatchDirectSummation) {
  const std::vector<double> v = MakeRandomWalk(500, 1.0, 3);
  RollingStats stats(v);
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t len = 1 + rng.UniformInt(100);
    const size_t pos = rng.UniformInt(v.size() - len + 1);
    double sum = 0.0;
    double sum_sq = 0.0;
    for (size_t i = pos; i < pos + len; ++i) {
      sum += v[i];
      sum_sq += v[i] * v[i];
    }
    EXPECT_NEAR(stats.Sum(pos, len), sum, 1e-9);
    EXPECT_NEAR(stats.SumSq(pos, len), sum_sq, 1e-9);
  }
}

TEST(RollingStatsTest, MomentsMatchTwoPassStats) {
  const std::vector<double> v = MakeSine(400, 31.0, 0.1, 7);
  RollingStats stats(v);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t len = 2 + rng.UniformInt(80);
    const size_t pos = rng.UniformInt(v.size() - len + 1);
    const std::span<const double> window(v.data() + pos, len);
    const RollingStats::Moments m = stats.MomentsOf(pos, len);
    EXPECT_NEAR(m.mean, Mean(window), 1e-10);
    EXPECT_NEAR(m.variance, Variance(window), 1e-9);
  }
}

TEST(RollingStatsTest, VarianceClampedToZeroOnConstantRange) {
  // A constant series with a non-representable value makes the one-pass
  // variance identity wobble around zero; the clamp must hold it at 0.
  const std::vector<double> v(300, 0.1);
  RollingStats stats(v);
  for (size_t len : {2u, 17u, 100u}) {
    for (size_t pos : {0u, 53u, 200u}) {
      EXPECT_GE(stats.MomentsOf(pos, len).variance, 0.0);
      EXPECT_NEAR(stats.MomentsOf(pos, len).variance, 0.0, 1e-12);
    }
  }
}

TEST(RollingStatsTest, ErrorBoundCoversObservedDivergence) {
  // The bound's whole purpose: the prefix-difference sum may not equal the
  // naive left-to-right sum, but the divergence must stay below
  // RangeSumErrorBound — including for series with a large offset, where
  // the divergence is worst.
  for (double offset : {0.0, 1e3, 1e6, 1e9}) {
    std::vector<double> v = MakeSine(4000, 37.0, 0.2, 13);
    for (double& x : v) {
      x += offset;
    }
    RollingStats stats(v);
    Rng rng(17);
    for (int trial = 0; trial < 200; ++trial) {
      const size_t len = 1 + rng.UniformInt(300);
      const size_t pos = rng.UniformInt(v.size() - len + 1);
      double naive = 0.0;
      double naive_sq = 0.0;
      for (size_t i = pos; i < pos + len; ++i) {
        naive += v[i];
        naive_sq += v[i] * v[i];
      }
      EXPECT_LE(std::abs(stats.Sum(pos, len) - naive),
                stats.RangeSumErrorBound(pos, len))
          << "offset=" << offset << " pos=" << pos << " len=" << len;
      EXPECT_LE(std::abs(stats.SumSq(pos, len) - naive_sq),
                stats.RangeSumSqErrorBound(pos, len))
          << "offset=" << offset << " pos=" << pos << " len=" << len;
    }
  }
}

TEST(RollingStatsTest, EmptyAndSingleElementSeries) {
  RollingStats empty(std::vector<double>{});
  EXPECT_EQ(empty.size(), 0u);
  RollingStats one(std::vector<double>{2.5});
  EXPECT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one.Sum(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(one.SumSq(0, 1), 6.25);
  const RollingStats::Moments m = one.MomentsOf(0, 1);
  EXPECT_DOUBLE_EQ(m.mean, 2.5);
  EXPECT_DOUBLE_EQ(m.variance, 0.0);
}

}  // namespace
}  // namespace gva
