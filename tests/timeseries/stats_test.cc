#include "timeseries/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace gva {
namespace {

TEST(StatsTest, MeanBasics) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{7.0}), 7.0);
}

TEST(StatsTest, PopulationVarianceAndStdDev) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);  // classic example
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
}

TEST(StatsTest, ConstantSeriesHasZeroVariance) {
  std::vector<double> v(100, 3.25);
  EXPECT_DOUBLE_EQ(Variance(v), 0.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 0.0);
}

TEST(StatsTest, MinMax) {
  std::vector<double> v{3.0, -1.0, 4.0, -1.5, 9.0};
  EXPECT_DOUBLE_EQ(Min(v), -1.5);
  EXPECT_DOUBLE_EQ(Max(v), 9.0);
  EXPECT_TRUE(std::isinf(Min(std::vector<double>{})));
  EXPECT_TRUE(std::isinf(Max(std::vector<double>{})));
}

TEST(StatsTest, ArgMinArgMaxFirstOccurrence) {
  std::vector<double> v{2.0, 1.0, 1.0, 5.0, 5.0};
  EXPECT_EQ(ArgMin(v), 1u);
  EXPECT_EQ(ArgMax(v), 3u);
  EXPECT_EQ(ArgMin(std::vector<double>{}), 0u);
}

TEST(StatsTest, MeanOfNegativeValues) {
  std::vector<double> v{-3.0, -5.0, -7.0};
  EXPECT_DOUBLE_EQ(Mean(v), -5.0);
}

}  // namespace
}  // namespace gva
