#include "timeseries/znorm.h"

#include <vector>

#include <gtest/gtest.h>

#include "timeseries/stats.h"
#include "util/rng.h"

namespace gva {
namespace {

TEST(ZNormTest, ProducesZeroMeanUnitVariance) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0, 100.0};
  std::vector<double> z = ZNormalized(v);
  EXPECT_NEAR(Mean(z), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(z), 1.0, 1e-12);
}

TEST(ZNormTest, PreservesShape) {
  std::vector<double> v{0.0, 1.0, 0.0, -1.0};
  std::vector<double> z = ZNormalized(v);
  // Monotone ordering preserved.
  EXPECT_GT(z[1], z[0]);
  EXPECT_GT(z[0], z[3]);
  EXPECT_DOUBLE_EQ(z[0], z[2]);
}

TEST(ZNormTest, FlatWindowOnlyCentered) {
  std::vector<double> v(50, 42.0);
  std::vector<double> z = ZNormalized(v);
  for (double value : z) {
    EXPECT_DOUBLE_EQ(value, 0.0);
  }
}

TEST(ZNormTest, NearFlatWindowUsesEpsilonGuard) {
  // Stddev ~ 0.005 < default epsilon 0.01: mean-centering only, so values
  // stay tiny instead of exploding to +/- 1.
  std::vector<double> v{1.0, 1.0 + 0.01, 1.0, 1.0 - 0.01};
  std::vector<double> z = ZNormalized(v);
  for (double value : z) {
    EXPECT_LT(std::abs(value), 0.02);
  }
}

TEST(ZNormTest, EpsilonZeroAlwaysDivides) {
  std::vector<double> v{1.0, 1.001, 0.999, 1.0};
  std::vector<double> z = ZNormalized(v, 0.0);
  EXPECT_NEAR(StdDev(z), 1.0, 1e-9);
}

TEST(ZNormTest, EmptyInput) {
  std::vector<double> z = ZNormalized(std::vector<double>{});
  EXPECT_TRUE(z.empty());
}

TEST(ZNormTest, OutParameterOverloadResizes) {
  std::vector<double> out(3, 99.0);
  std::vector<double> v{5.0, 7.0};
  ZNormalize(v, out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0], -1.0, 1e-12);
  EXPECT_NEAR(out[1], 1.0, 1e-12);
}

TEST(ZNormTest, InvariantToAffineTransform) {
  Rng rng(77);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) {
    v.push_back(rng.Gaussian());
  }
  std::vector<double> scaled;
  for (double x : v) {
    scaled.push_back(3.5 * x + 11.0);
  }
  std::vector<double> za = ZNormalized(v);
  std::vector<double> zb = ZNormalized(scaled);
  for (size_t i = 0; i < za.size(); ++i) {
    EXPECT_NEAR(za[i], zb[i], 1e-9);
  }
}

}  // namespace
}  // namespace gva
