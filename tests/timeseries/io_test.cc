#include "timeseries/io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "datasets/simple.h"

namespace gva {
namespace {

TEST(TimeSeriesIoTest, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/gva_io_test.csv";
  TimeSeries original(MakeSine(200, 25.0, 0.1, 5), "sine");
  ASSERT_TRUE(WriteTimeSeriesCsv(path, original).ok());
  auto loaded = ReadTimeSeriesCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ((*loaded)[i], original[i]);
  }
  EXPECT_EQ(loaded->name(), path);
  std::remove(path.c_str());
}

TEST(TimeSeriesIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadTimeSeriesCsv("/no/such/file.csv").ok());
}

}  // namespace
}  // namespace gva
