#include "timeseries/transforms.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datasets/simple.h"
#include "timeseries/stats.h"

namespace gva {
namespace {

TEST(MovingAverageTest, WindowOneIsIdentity) {
  std::vector<double> v{1.0, 2.0, 3.0};
  auto out = MovingAverage(v, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, v);
}

TEST(MovingAverageTest, SmoothsInterior) {
  std::vector<double> v{0.0, 0.0, 3.0, 0.0, 0.0};
  auto out = MovingAverage(v, 3);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[2], 1.0);
  EXPECT_DOUBLE_EQ((*out)[1], 1.0);
  EXPECT_DOUBLE_EQ((*out)[0], 0.0);  // edge uses available samples
}

TEST(MovingAverageTest, EdgesUsePartialWindows) {
  std::vector<double> v{2.0, 4.0};
  auto out = MovingAverage(v, 3);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[0], 3.0);
  EXPECT_DOUBLE_EQ((*out)[1], 3.0);
}

TEST(MovingAverageTest, RejectsEvenOrZeroWindow) {
  std::vector<double> v{1.0};
  EXPECT_FALSE(MovingAverage(v, 0).ok());
  EXPECT_FALSE(MovingAverage(v, 2).ok());
}

TEST(MovingAverageTest, ReducesNoiseVariance) {
  std::vector<double> noisy = MakeNoise(5000, 1.0, 9);
  auto smoothed = MovingAverage(noisy, 9);
  ASSERT_TRUE(smoothed.ok());
  EXPECT_LT(Variance(*smoothed), Variance(noisy) / 4.0);
}

TEST(DownsampleTest, KeepsEveryKth) {
  std::vector<double> v{0, 1, 2, 3, 4, 5, 6};
  auto out = Downsample(v, 3);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (std::vector<double>{0, 3, 6}));
}

TEST(DownsampleTest, FactorOneIsIdentity) {
  std::vector<double> v{1, 2, 3};
  auto out = Downsample(v, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, v);
}

TEST(DownsampleTest, RejectsZeroFactor) {
  std::vector<double> v{1.0};
  EXPECT_FALSE(Downsample(v, 0).ok());
}

TEST(DetrendTest, RemovesExactLinearTrend) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) {
    v.push_back(3.0 + 0.5 * i);
  }
  std::vector<double> out = Detrend(v);
  for (double x : out) {
    EXPECT_NEAR(x, 0.0, 1e-9);
  }
}

TEST(DetrendTest, PreservesResidualShape) {
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) {
    v.push_back(0.02 * i + std::sin(0.2 * i));
  }
  std::vector<double> out = Detrend(v);
  // The sine survives: amplitude close to 1.
  EXPECT_GT(Max(out), 0.8);
  EXPECT_LT(Min(out), -0.8);
  EXPECT_NEAR(Mean(out), 0.0, 1e-9);
}

TEST(DetrendTest, TinyInputsPassThrough) {
  EXPECT_TRUE(Detrend(std::vector<double>{}).empty());
  EXPECT_EQ(Detrend(std::vector<double>{5.0}),
            (std::vector<double>{5.0}));
}

TEST(DifferenceTest, Basics) {
  std::vector<double> v{1.0, 4.0, 2.0};
  EXPECT_EQ(Difference(v), (std::vector<double>{3.0, -2.0}));
  EXPECT_TRUE(Difference(std::vector<double>{7.0}).empty());
}

TEST(DifferenceTest, ConstantBecomesZero) {
  std::vector<double> v(10, 3.0);
  for (double d : Difference(v)) {
    EXPECT_DOUBLE_EQ(d, 0.0);
  }
}

TEST(ClampTest, Basics) {
  std::vector<double> v{-5.0, 0.5, 5.0};
  EXPECT_EQ(Clamp(v, -1.0, 1.0), (std::vector<double>{-1.0, 0.5, 1.0}));
}

}  // namespace
}  // namespace gva
