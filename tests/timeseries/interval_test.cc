#include "timeseries/interval.h"

#include <gtest/gtest.h>

#include "timeseries/sliding_window.h"
#include "timeseries/time_series.h"

namespace gva {
namespace {

TEST(IntervalTest, LengthAndEmpty) {
  EXPECT_EQ((Interval{3, 7}).length(), 4u);
  EXPECT_TRUE((Interval{3, 3}).empty());
  EXPECT_TRUE((Interval{5, 3}).empty());
  EXPECT_EQ((Interval{5, 3}).length(), 0u);
}

TEST(IntervalTest, Contains) {
  Interval i{2, 5};
  EXPECT_FALSE(i.Contains(1));
  EXPECT_TRUE(i.Contains(2));
  EXPECT_TRUE(i.Contains(4));
  EXPECT_FALSE(i.Contains(5));  // half-open
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE((Interval{0, 5}).Overlaps({4, 8}));
  EXPECT_TRUE((Interval{4, 8}).Overlaps({0, 5}));
  EXPECT_FALSE((Interval{0, 5}).Overlaps({5, 8}));  // touching is disjoint
  EXPECT_TRUE((Interval{0, 10}).Overlaps({3, 4}));  // containment
  EXPECT_FALSE((Interval{3, 3}).Overlaps({0, 10}));  // empty never overlaps
}

TEST(IntervalTest, OverlapLength) {
  EXPECT_EQ((Interval{0, 5}).OverlapLength({3, 9}), 2u);
  EXPECT_EQ((Interval{0, 5}).OverlapLength({5, 9}), 0u);
  EXPECT_EQ((Interval{2, 8}).OverlapLength({4, 6}), 2u);
  EXPECT_EQ((Interval{0, 5}).OverlapLength({0, 5}), 5u);
}

TEST(IntervalTest, Jaccard) {
  EXPECT_DOUBLE_EQ((Interval{0, 4}).Jaccard({0, 4}), 1.0);
  EXPECT_DOUBLE_EQ((Interval{0, 4}).Jaccard({4, 8}), 0.0);
  EXPECT_DOUBLE_EQ((Interval{0, 4}).Jaccard({2, 6}), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ((Interval{0, 0}).Jaccard({0, 0}), 0.0);
}

TEST(SlidingWindowTest, NumWindows) {
  EXPECT_EQ(NumSlidingWindows(10, 3), 8u);
  EXPECT_EQ(NumSlidingWindows(10, 10), 1u);
  EXPECT_EQ(NumSlidingWindows(9, 10), 0u);
}

TEST(SlidingWindowTest, WindowAtViewsCorrectRange) {
  std::vector<double> v{0, 1, 2, 3, 4, 5};
  auto w = WindowAt(v, 2, 3);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[2], 4.0);
}

TEST(SlidingWindowTest, SelfMatchDefinition) {
  // Non-self match requires |p - q| >= n (paper Section 2).
  EXPECT_TRUE(IsSelfMatch(10, 10, 5));
  EXPECT_TRUE(IsSelfMatch(10, 14, 5));
  EXPECT_TRUE(IsSelfMatch(14, 10, 5));
  EXPECT_FALSE(IsSelfMatch(10, 15, 5));
  EXPECT_FALSE(IsSelfMatch(15, 10, 5));
}

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries ts({1.0, 2.0, 3.0}, "demo");
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_FALSE(ts.empty());
  EXPECT_DOUBLE_EQ(ts[1], 2.0);
  EXPECT_EQ(ts.name(), "demo");
  ts[1] = 9.0;
  EXPECT_DOUBLE_EQ(ts.values()[1], 9.0);
}

TEST(TimeSeriesTest, SubsequenceView) {
  TimeSeries ts({0.0, 1.0, 2.0, 3.0, 4.0});
  auto sub = ts.Subsequence(1, 3);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub[0], 1.0);
  EXPECT_DOUBLE_EQ(sub[2], 3.0);
}

TEST(TimeSeriesDeathTest, SubsequenceOutOfRange) {
  TimeSeries ts({0.0, 1.0, 2.0});
  EXPECT_DEATH((void)ts.Subsequence(2, 2), "out of range");
}

TEST(TimeSeriesTest, ImplicitSpanConversion) {
  TimeSeries ts({1.0, 2.0});
  std::span<const double> view = ts;
  EXPECT_EQ(view.size(), 2u);
}

}  // namespace
}  // namespace gva
