#include "discord/brute_force.h"

#include <vector>

#include <gtest/gtest.h>

#include "datasets/simple.h"
#include "timeseries/sliding_window.h"

namespace gva {
namespace {

TEST(BruteForceCallCountTest, MatchesDirectEnumeration) {
  for (size_t m : {20u, 35u, 64u, 100u}) {
    for (size_t n : {3u, 5u, 10u}) {
      const size_t candidates = NumSlidingWindows(m, n);
      uint64_t expected = 0;
      for (size_t p = 0; p < candidates; ++p) {
        for (size_t q = 0; q < candidates; ++q) {
          if (!IsSelfMatch(p, q, n)) {
            ++expected;
          }
        }
      }
      EXPECT_EQ(BruteForceCallCount(m, n), expected)
          << "m=" << m << " n=" << n;
    }
  }
}

TEST(BruteForceCallCountTest, DegenerateInputs) {
  EXPECT_EQ(BruteForceCallCount(10, 0), 0u);
  EXPECT_EQ(BruteForceCallCount(5, 10), 0u);
  EXPECT_EQ(BruteForceCallCount(10, 10), 0u);  // one candidate, no non-self
}

TEST(BruteForceCallCountTest, PaperScaleMagnitude) {
  // Daily-commute row of Table 1: length 17175, window 350 — the paper
  // reports 271'442'101 calls. With |p-q| >= n self-match exclusion the
  // count lands in the same ballpark (~2.7e8).
  const uint64_t calls = BruteForceCallCount(17175, 350);
  EXPECT_GT(calls, 250'000'000u);
  EXPECT_LT(calls, 290'000'000u);
}

TEST(BruteForceTest, ActualSearchSpendsExactlyTheAnalyticCount) {
  std::vector<double> series = MakeSine(150, 25.0, 0.1, 7);
  auto result = FindDiscordsBruteForce(series, 20, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance_calls, BruteForceCallCount(150, 20));
}

TEST(BruteForceTest, FindsPlantedAnomaly) {
  LabeledSeries data = MakeSineWithAnomaly(600, 50.0, 0.02, 300, 50, 11);
  auto result = FindDiscordsBruteForce(data.series, 50, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->discords.size(), 1u);
  const DiscordRecord& d = result->discords[0];
  // The discord window must overlap the planted flat segment.
  EXPECT_TRUE(d.span().Overlaps(data.anomalies[0]))
      << "discord at " << d.position;
  EXPECT_GT(d.distance, 0.0);
}

TEST(BruteForceTest, TopKDiscordsDoNotOverlap) {
  LabeledSeries data = MakeSineWithAnomaly(800, 40.0, 0.05, 400, 40, 23);
  auto result = FindDiscordsBruteForce(data.series, 40, 3);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->discords.size(), 3u);
  for (size_t i = 0; i < result->discords.size(); ++i) {
    for (size_t j = i + 1; j < result->discords.size(); ++j) {
      EXPECT_FALSE(IsSelfMatch(result->discords[i].position,
                               result->discords[j].position, 40));
    }
  }
  // Ranked descending by distance.
  for (size_t i = 1; i < result->discords.size(); ++i) {
    EXPECT_GE(result->discords[i - 1].distance,
              result->discords[i].distance);
  }
}

TEST(BruteForceTest, NearestNeighborIsConsistent) {
  std::vector<double> series = MakeSine(200, 20.0, 0.1, 31);
  auto result = FindDiscordsBruteForce(series, 25, 1);
  ASSERT_TRUE(result.ok());
  const DiscordRecord& d = result->discords[0];
  EXPECT_FALSE(IsSelfMatch(d.position, d.nn_position, d.length));
}

TEST(BruteForceTest, RejectsBadArguments) {
  std::vector<double> series(30, 0.0);
  EXPECT_FALSE(FindDiscordsBruteForce(series, 1, 1).ok());
  EXPECT_FALSE(FindDiscordsBruteForce(series, 20, 1).ok());  // too short
  EXPECT_FALSE(FindDiscordsBruteForce(series, 10, 0).ok());
}

}  // namespace
}  // namespace gva
