// Cross-algorithm property tests: the three discord finders must agree
// where their contracts overlap, across a sweep of signals and windows.

#include <cmath>

#include <gtest/gtest.h>

#include "core/rra.h"
#include "datasets/simple.h"
#include "discord/brute_force.h"
#include "discord/distance.h"
#include "discord/hotsax.h"

namespace gva {
namespace {

struct Case {
  size_t length;
  double period;
  size_t window;
  uint64_t seed;
};

class DiscordAgreementTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

// HOTSAX is exact: identical discord distance to brute force on arbitrary
// signals (here: noisy sines with a planted flat segment, random walks).
TEST_P(DiscordAgreementTest, HotSaxEqualsBruteForce) {
  const auto [window, seed] = GetParam();
  LabeledSeries sine = MakeSineWithAnomaly(420, 35.0, 0.08, 200, 40, seed);
  std::vector<double> walk = MakeRandomWalk(420, 1.0, seed + 100);

  for (std::span<const double> series :
       {std::span<const double>(sine.series), std::span<const double>(walk)}) {
    auto brute = FindDiscordsBruteForce(series, window, 1);
    HotSaxOptions opts;
    opts.sax.window = window;
    opts.sax.paa_size = 4;
    opts.sax.alphabet_size = 4;
    opts.seed = seed;
    auto hot = FindDiscordsHotSax(series, opts);
    ASSERT_TRUE(brute.ok());
    ASSERT_TRUE(hot.ok());
    ASSERT_FALSE(hot->discords.empty());
    EXPECT_NEAR(hot->discords[0].distance, brute->discords[0].distance,
                1e-9)
        << "window=" << window << " seed=" << seed;
    EXPECT_LE(hot->distance_calls, brute->distance_calls);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DiscordAgreementTest,
    ::testing::Combine(::testing::Values<size_t>(20, 30, 50),
                       ::testing::Values<uint64_t>(1, 2, 3, 4, 5)));

// The exact-NN RRA reports, for its winning interval, the true nearest
// non-self-match distance — verified against a direct exhaustive scan.
class RraExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RraExactnessTest, ReportedDistanceIsTrueNearestNeighbor) {
  const uint64_t seed = GetParam();
  LabeledSeries data = MakeSineWithAnomaly(900, 60.0, 0.05, 450, 70, seed);
  RraOptions opts;
  opts.sax.window = 120;
  opts.sax.paa_size = 4;
  opts.sax.alphabet_size = 4;
  opts.seed = seed * 31 + 7;
  auto rra = FindRraDiscords(data.series, opts);
  ASSERT_TRUE(rra.ok());
  ASSERT_FALSE(rra->result.discords.empty());
  const DiscordRecord& d = rra->result.discords[0];

  SubsequenceDistance dist(data.series);
  double nn = SubsequenceDistance::kInfinity;
  for (size_t q = 0; q + d.length <= data.series.size(); ++q) {
    const size_t gap = q > d.position ? q - d.position : d.position - q;
    if (gap < d.length) {
      continue;
    }
    nn = std::min(nn, dist.Distance(d.position, q, d.length, nn));
  }
  EXPECT_NEAR(d.distance, nn / static_cast<double>(d.length), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RraExactnessTest,
                         ::testing::Range<uint64_t>(1, 9));

// The winning discord must dominate: no other candidate interval (that
// completed its scan) can have a larger exact nearest-neighbor distance.
TEST(RraDominanceTest, NoCandidateBeatsTheReportedDiscord) {
  LabeledSeries data = MakeSineWithAnomaly(800, 50.0, 0.04, 400, 60, 11);
  RraOptions opts;
  opts.sax.window = 100;
  opts.sax.paa_size = 4;
  opts.sax.alphabet_size = 4;
  auto rra = FindRraDiscords(data.series, opts);
  ASSERT_TRUE(rra.ok());
  ASSERT_FALSE(rra->result.discords.empty());
  const DiscordRecord& best = rra->result.discords[0];

  SubsequenceDistance dist(data.series);
  auto exact_nn = [&](size_t p, size_t len) {
    double nn = SubsequenceDistance::kInfinity;
    for (size_t q = 0; q + len <= data.series.size(); ++q) {
      const size_t gap = q > p ? q - p : p - q;
      if (gap < len) {
        continue;
      }
      nn = std::min(nn, dist.Distance(p, q, len, nn));
    }
    return nn / static_cast<double>(len);
  };

  for (const RuleInterval& ri : rra->decomposition.intervals) {
    const size_t len = ri.span.length();
    if (len < 2 || ri.span.end > data.series.size()) {
      continue;
    }
    const double nn = exact_nn(ri.span.start, len);
    if (std::isfinite(nn)) {
      EXPECT_LE(nn, best.distance + 1e-9)
          << "interval [" << ri.span.start << ", " << ri.span.end
          << ") beats the reported discord";
    }
  }
}

// Exclusion-zone property under top-k: every reported discord is disjoint
// from every other, across algorithms.
TEST(TopKPropertyTest, AllAlgorithmsReportDisjointDiscords) {
  LabeledSeries data = MakeSineWithAnomaly(700, 35.0, 0.06, 350, 35, 13);
  const size_t window = 35;

  auto brute = FindDiscordsBruteForce(data.series, window, 4);
  HotSaxOptions hot_opts;
  hot_opts.sax.window = window;
  auto hot = FindDiscordsHotSax(data.series, hot_opts);
  RraOptions rra_opts;
  rra_opts.sax.window = window;
  rra_opts.top_k = 4;
  auto rra = FindRraDiscords(data.series, rra_opts);
  ASSERT_TRUE(brute.ok());
  ASSERT_TRUE(hot.ok());
  ASSERT_TRUE(rra.ok());

  auto check_disjoint = [](const std::vector<DiscordRecord>& discords) {
    for (size_t i = 0; i < discords.size(); ++i) {
      for (size_t j = i + 1; j < discords.size(); ++j) {
        EXPECT_FALSE(discords[i].span().Overlaps(discords[j].span()));
      }
    }
  };
  check_disjoint(brute->discords);
  check_disjoint(hot->discords);
  check_disjoint(rra->result.discords);
}

}  // namespace
}  // namespace gva
