// Exactness tests for the blocked-abandon distance kernel: the blocked
// accumulation (vectorizable squared-diff blocks folded left-to-right, with
// the abandon check between blocks) must match a scalar per-element
// reference in value and in abandon *decision*, and the call counter must
// still count exactly one call per invocation under concurrency.
//
// Every oracle here is pinned to the scalar backend: these are properties
// of the scalar blocked kernel specifically (e.g. "the limit compares
// against the same running sum either way"), which the SIMD backends do not
// promise. Cross-backend agreement lives in tests/backend/.

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "backend/backend.h"
#include "datasets/simple.h"
#include "discord/distance.h"
#include "util/rng.h"

namespace gva {
namespace {

/// The pre-overhaul scalar kernel: prefix-sum window stats, one fused
/// normalize-subtract-square-accumulate loop, per-element abandon check.
class ScalarReferenceDistance {
 public:
  explicit ScalarReferenceDistance(std::span<const double> series,
                                   double epsilon = kDefaultZNormEpsilon)
      : series_(series), epsilon_(epsilon) {
    prefix_.resize(series.size() + 1);
    prefix_sq_.resize(series.size() + 1);
    prefix_[0] = 0.0;
    prefix_sq_[0] = 0.0;
    for (size_t i = 0; i < series.size(); ++i) {
      prefix_[i + 1] = prefix_[i] + series[i];
      prefix_sq_[i + 1] = prefix_sq_[i] + series[i] * series[i];
    }
  }

  double Distance(size_t p, size_t q, size_t length,
                  double limit = SubsequenceDistance::kInfinity) const {
    const auto [mean_p, inv_p] = StatsOf(p, length);
    const auto [mean_q, inv_q] = StatsOf(q, length);
    const double limit_sq =
        limit == SubsequenceDistance::kInfinity ? limit : limit * limit;
    double sum_sq = 0.0;
    for (size_t i = 0; i < length; ++i) {
      const double va = (series_[p + i] - mean_p) * inv_p;
      const double vb = (series_[q + i] - mean_q) * inv_q;
      const double d = va - vb;
      sum_sq += d * d;
      if (sum_sq >= limit_sq) {
        return SubsequenceDistance::kInfinity;
      }
    }
    return std::sqrt(sum_sq);
  }

 private:
  std::pair<double, double> StatsOf(size_t pos, size_t length) const {
    const double n = static_cast<double>(length);
    const double mean = (prefix_[pos + length] - prefix_[pos]) / n;
    double variance =
        (prefix_sq_[pos + length] - prefix_sq_[pos]) / n - mean * mean;
    if (variance < 0.0) {
      variance = 0.0;
    }
    const double sd = std::sqrt(variance);
    return {mean, sd < epsilon_ ? 1.0 : 1.0 / sd};
  }

  std::span<const double> series_;
  double epsilon_;
  std::vector<double> prefix_;
  std::vector<double> prefix_sq_;
};

TEST(BlockedDistanceTest, MatchesScalarReferenceOnRandomPairs) {
  const std::vector<double> series = MakeRandomWalk(2000, 1.0, 91);
  SubsequenceDistance dist(series, kDefaultZNormEpsilon,
                           backend::ScalarBackend());
  ScalarReferenceDistance ref(series);
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    // Lengths straddle the block size: shorter than one block, block
    // multiples, and ragged tails.
    const size_t len = 3 + rng.UniformInt(200);
    const size_t p = rng.UniformInt(series.size() - len + 1);
    const size_t q = rng.UniformInt(series.size() - len + 1);
    const double blocked = dist.Distance(p, q, len);
    const double scalar = ref.Distance(p, q, len);
    EXPECT_NEAR(blocked, scalar, 1e-9)
        << "p=" << p << " q=" << q << " len=" << len;
  }
}

TEST(BlockedDistanceTest, ExactBlockMultipleLengths) {
  const std::vector<double> series = MakeSine(1000, 43.0, 0.15, 3);
  SubsequenceDistance dist(series, kDefaultZNormEpsilon,
                           backend::ScalarBackend());
  ScalarReferenceDistance ref(series);
  for (size_t len :
       {SubsequenceDistance::kBlock, 2 * SubsequenceDistance::kBlock,
        8 * SubsequenceDistance::kBlock}) {
    for (size_t p : {0u, 17u, 400u}) {
      const size_t q = p + 300;
      EXPECT_NEAR(dist.Distance(p, q, len), ref.Distance(p, q, len), 1e-12)
          << "len=" << len << " p=" << p;
    }
  }
}

TEST(BlockedDistanceTest, AbandonsIffScalarReferenceWouldReachLimit) {
  // The squared sum is monotone, so the block-granular check must abandon
  // exactly the calls the per-element check abandons: kInfinity iff the
  // full distance >= limit, the exact value otherwise.
  const std::vector<double> series = MakeSine(1500, 27.0, 0.2, 29);
  SubsequenceDistance dist(series, kDefaultZNormEpsilon,
                           backend::ScalarBackend());
  ScalarReferenceDistance ref(series);
  Rng rng(13);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t len = 5 + rng.UniformInt(150);
    const size_t p = rng.UniformInt(series.size() - len + 1);
    const size_t q = rng.UniformInt(series.size() - len + 1);
    const double truth = ref.Distance(p, q, len);
    const double limit = truth * (0.25 + 1.5 * rng.UniformDouble()) + 1e-9;
    const double blocked = dist.Distance(p, q, len, limit);
    const double scalar = ref.Distance(p, q, len, limit);
    if (scalar == SubsequenceDistance::kInfinity) {
      EXPECT_EQ(blocked, SubsequenceDistance::kInfinity)
          << "p=" << p << " q=" << q << " len=" << len << " limit=" << limit;
    } else {
      EXPECT_NEAR(blocked, scalar, 1e-9)
          << "p=" << p << " q=" << q << " len=" << len << " limit=" << limit;
    }
  }
}

TEST(BlockedDistanceTest, LimitAtExactDistanceDecidesLikeScalar) {
  // limit == returned distance: whether the >= comparison trips depends on
  // how sqrt(sum)^2 rounds relative to sum, so the only invariant is that
  // the blocked kernel decides exactly like the per-element scalar kernel —
  // the comparison happens against the same running sum either way.
  const std::vector<double> series = MakeSine(300, 21.0, 0.1, 5);
  SubsequenceDistance dist(series, kDefaultZNormEpsilon,
                           backend::ScalarBackend());
  ScalarReferenceDistance ref(series);
  for (size_t len : {7u, 32u, 45u, 64u}) {
    for (size_t p : {2u, 30u, 101u}) {
      const size_t q = p + 130;
      const double full = dist.Distance(p, q, len);
      ASSERT_GT(full, 0.0);
      const double blocked = dist.Distance(p, q, len, full);
      const double scalar = ref.Distance(p, q, len, full);
      if (scalar == SubsequenceDistance::kInfinity) {
        EXPECT_EQ(blocked, SubsequenceDistance::kInfinity)
            << "len=" << len << " p=" << p;
      } else {
        EXPECT_EQ(blocked, scalar) << "len=" << len << " p=" << p;
      }
    }
  }
}

TEST(BlockedDistanceTest, FastPathAndLimitedPathAgree) {
  // A limit far above the distance must not perturb the result relative to
  // the unconditional full-length path (same summation order in both).
  const std::vector<double> series = MakeRandomWalk(800, 1.0, 77);
  SubsequenceDistance dist(series, kDefaultZNormEpsilon,
                           backend::ScalarBackend());
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t len = 4 + rng.UniformInt(120);
    const size_t p = rng.UniformInt(series.size() - len + 1);
    const size_t q = rng.UniformInt(series.size() - len + 1);
    const double unlimited = dist.Distance(p, q, len);
    const double limited = dist.Distance(p, q, len, unlimited + 1.0);
    EXPECT_EQ(unlimited, limited) << "p=" << p << " q=" << q << " len=" << len;
  }
}

TEST(BlockedDistanceTest, EveryLengthBelowOneBlockMatchesScalar) {
  // Deterministic sweep of the short-subsequence regime the random-length
  // tests only sample: every length from 2 up to one full block runs
  // entirely in the kernel's ragged-tail path (full variant) respectively
  // before the first block-granular limit check (abandoning variant), so
  // each length is its own code shape worth pinning.
  const std::vector<double> series = MakeRandomWalk(400, 1.0, 41);
  SubsequenceDistance dist(series, kDefaultZNormEpsilon,
                           backend::ScalarBackend());
  ScalarReferenceDistance ref(series);
  for (size_t len = 2; len <= SubsequenceDistance::kBlock; ++len) {
    for (size_t p : {size_t{0}, size_t{33}, series.size() - len}) {
      const size_t q = (p + 2 * len + 19) % (series.size() - len + 1);
      const double blocked = dist.Distance(p, q, len);
      const double scalar = ref.Distance(p, q, len);
      EXPECT_NEAR(blocked, scalar, 1e-12) << "len=" << len << " p=" << p;

      // Abandoning path, limit above the distance: same value bit-for-bit.
      EXPECT_EQ(dist.Distance(p, q, len, blocked + 1.0), blocked)
          << "len=" << len << " p=" << p;
      // Limit below: both kernels must abandon (sum is monotone even when
      // the whole subsequence is shorter than one block).
      if (blocked > 0.0) {
        EXPECT_EQ(dist.Distance(p, q, len, blocked * 0.5),
                  SubsequenceDistance::kInfinity)
            << "len=" << len << " p=" << p;
        EXPECT_EQ(ref.Distance(p, q, len, blocked * 0.5),
                  SubsequenceDistance::kInfinity)
            << "len=" << len << " p=" << p;
      }
    }
  }
}

TEST(BlockedDistanceTest, ExactlyOneBlockExercisesNoRaggedTail) {
  // length == kBlock: one full block, zero tail elements — the boundary
  // between the blocked loop and the tail handling on both kernel paths.
  const std::vector<double> series = MakeSine(500, 31.0, 0.12, 17);
  SubsequenceDistance dist(series, kDefaultZNormEpsilon,
                           backend::ScalarBackend());
  ScalarReferenceDistance ref(series);
  const size_t len = SubsequenceDistance::kBlock;
  for (size_t p : {size_t{0}, size_t{7}, size_t{250}, series.size() - len}) {
    const size_t q = (p + 111) % (series.size() - len + 1);
    const double full = dist.Distance(p, q, len);
    EXPECT_NEAR(full, ref.Distance(p, q, len), 1e-12) << "p=" << p;
    EXPECT_EQ(dist.Distance(p, q, len, full + 1e-6), full) << "p=" << p;
    if (full > 0.0) {
      EXPECT_EQ(dist.Distance(p, q, len, full * 0.9),
                SubsequenceDistance::kInfinity)
          << "p=" << p;
    }
  }
}

TEST(BlockedDistanceTest, ZNormEuclideanAgreesWithOracleOnShortLengths) {
  // The span-based convenience wrapper and the prefix-sum oracle implement
  // the same z-normalize + accumulate composition; on short subsequences
  // (below and at one block) they must agree to rounding, including on a
  // flat window where the epsilon guard switches to mean-centering.
  std::vector<double> series = MakeRandomWalk(300, 1.0, 53);
  for (size_t i = 100; i < 100 + SubsequenceDistance::kBlock; ++i) {
    series[i] = 4.2;  // flat stretch: sd < epsilon
  }
  SubsequenceDistance dist(series, kDefaultZNormEpsilon,
                           backend::ScalarBackend());
  for (size_t len :
       {size_t{2}, size_t{5}, size_t{11}, SubsequenceDistance::kBlock}) {
    for (size_t p : {size_t{0}, size_t{100}, size_t{200}}) {
      const size_t q = p + 50;
      const std::span<const double> a(series.data() + p, len);
      const std::span<const double> b(series.data() + q, len);
      EXPECT_NEAR(dist.Distance(p, q, len), ZNormEuclideanDistance(a, b),
                  1e-9)
          << "len=" << len << " p=" << p;
    }
  }
}

TEST(BlockedDistanceTest, CountsExactlyOneCallPerInvocationUnderConcurrency) {
  // Both kernel paths (fast and abandoning) add exactly one relaxed
  // increment per invocation; a shared oracle must not lose any.
  const std::vector<double> series = MakeSine(600, 40.0, 0.1, 9);
  SubsequenceDistance dist(series, kDefaultZNormEpsilon,
                           backend::ScalarBackend());
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dist, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const auto p = static_cast<size_t>((t * 11 + i) % 500);
        const auto q = static_cast<size_t>((i * 17) % 500);
        if (i % 2 == 0) {
          (void)dist.Distance(p, q, 60);
        } else {
          (void)dist.Distance(p, q, 60, 0.25);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(dist.calls(),
            static_cast<uint64_t>(kThreads) * kCallsPerThread);
}

}  // namespace
}  // namespace gva
