#include "discord/distance.h"

#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "backend/backend.h"
#include "datasets/simple.h"
#include "obs/metrics.h"
#include "timeseries/znorm.h"
#include "util/rng.h"

namespace gva {
namespace {

TEST(EuclideanDistanceTest, KnownValues) {
  std::vector<double> a{0.0, 0.0};
  std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

TEST(ZNormEuclideanTest, ScaleInvariant) {
  std::vector<double> a{1.0, 2.0, 3.0, 2.0};
  std::vector<double> b{10.0, 20.0, 30.0, 20.0};
  EXPECT_NEAR(ZNormEuclideanDistance(a, b), 0.0, 1e-9);
}

TEST(SubsequenceDistanceTest, MatchesNaiveZnormDistance) {
  std::vector<double> series = MakeSine(300, 37.0, 0.1, 9);
  SubsequenceDistance dist(series);
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t len = 5 + rng.UniformInt(60);
    const size_t p = rng.UniformInt(series.size() - len + 1);
    const size_t q = rng.UniformInt(series.size() - len + 1);
    const double fast = dist.Distance(p, q, len);
    const double naive = ZNormEuclideanDistance(
        std::span<const double>(series).subspan(p, len),
        std::span<const double>(series).subspan(q, len));
    EXPECT_NEAR(fast, naive, 1e-6) << "p=" << p << " q=" << q << " len=" << len;
  }
}

TEST(SubsequenceDistanceTest, ZeroForIdenticalPositions) {
  std::vector<double> series = MakeSine(100, 20.0, 0.0, 3);
  SubsequenceDistance dist(series);
  EXPECT_NEAR(dist.Distance(10, 10, 30), 0.0, 1e-9);
}

TEST(SubsequenceDistanceTest, CountsEveryCall) {
  std::vector<double> series = MakeSine(100, 20.0, 0.1, 4);
  SubsequenceDistance dist(series);
  EXPECT_EQ(dist.calls(), 0u);
  (void)dist.Distance(0, 50, 20);
  (void)dist.Distance(1, 40, 20, 0.001);  // abandoned, still counted
  EXPECT_EQ(dist.calls(), 2u);
  dist.ResetCalls();
  EXPECT_EQ(dist.calls(), 0u);
}

TEST(SubsequenceDistanceTest, EarlyAbandonReturnsInfinity) {
  std::vector<double> series = MakeSine(200, 10.0, 0.2, 5);
  SubsequenceDistance dist(series);
  const double full = dist.Distance(0, 100, 50);
  ASSERT_GT(full, 0.0);
  // A limit below the true distance must abandon.
  EXPECT_EQ(dist.Distance(0, 100, 50, full * 0.5),
            SubsequenceDistance::kInfinity);
  // A limit above the true distance must return the exact value.
  EXPECT_NEAR(dist.Distance(0, 100, 50, full * 1.5), full, 1e-12);
}

TEST(SubsequenceDistanceTest, AbandonThresholdIsTight) {
  std::vector<double> series = MakeSine(200, 10.0, 0.2, 6);
  // Pinned to the scalar backend: the property fl(sqrt(s))^2 <= s is not
  // guaranteed by IEEE rounding, it just holds for this input — and only
  // for the scalar accumulation order that produced this exact s.
  SubsequenceDistance dist(series, kDefaultZNormEpsilon,
                           backend::ScalarBackend());
  const double full = dist.Distance(3, 120, 40);
  // Limit exactly equal to the distance: the running sum reaches the limit
  // only at the very end; equality abandons (>=), which is safe because a
  // caller never needs a distance equal to its current nearest neighbor.
  EXPECT_EQ(dist.Distance(3, 120, 40, full),
            SubsequenceDistance::kInfinity);
}

TEST(SubsequenceDistanceTest, FlatWindowsUseCenteringOnly) {
  std::vector<double> series(100, 2.0);
  for (size_t i = 50; i < 100; ++i) {
    series[i] = 5.0;  // another flat level
  }
  SubsequenceDistance dist(series);
  // Both windows are flat; centered they are identical.
  EXPECT_NEAR(dist.Distance(0, 55, 20), 0.0, 1e-12);
}

TEST(SubsequenceDistanceTest, SymmetricInArguments) {
  std::vector<double> series = MakeRandomWalk(400, 1.0, 12);
  SubsequenceDistance dist(series);
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t len = 10 + rng.UniformInt(40);
    const size_t p = rng.UniformInt(series.size() - len + 1);
    const size_t q = rng.UniformInt(series.size() - len + 1);
    EXPECT_NEAR(dist.Distance(p, q, len), dist.Distance(q, p, len), 1e-9);
  }
}

TEST(SubsequenceDistanceTest, FlatWindowsMatchZNormEuclideanDistance) {
  // Both the convenience wrapper and the prefix-sum oracle must apply the
  // same flat-window rule — mean-center without dividing when sd < epsilon
  // — or rankings computed through one disagree with the other on
  // near-constant data. Mix flat, near-flat (noise below epsilon), and
  // oscillating windows to cover both sides of the threshold.
  std::vector<double> series(260);
  Rng rng(99);
  for (size_t i = 0; i < 80; ++i) {
    series[i] = 3.0;  // exactly flat
  }
  for (size_t i = 80; i < 160; ++i) {
    series[i] = -1.0 + 0.001 * rng.Gaussian();  // flat up to sub-eps noise
  }
  for (size_t i = 160; i < 260; ++i) {
    series[i] = std::sin(0.3 * static_cast<double>(i));
  }
  SubsequenceDistance dist(series);
  const size_t len = 40;
  const std::vector<std::pair<size_t, size_t>> pairs = {
      {0, 40},    // flat vs flat
      {0, 100},   // flat vs near-flat
      {100, 20},  // near-flat vs flat
      {10, 200},  // flat vs oscillating
      {90, 210},  // near-flat vs oscillating
      {170, 215}, // oscillating vs oscillating
  };
  for (const auto& [p, q] : pairs) {
    const double fast = dist.Distance(p, q, len);
    const double naive = ZNormEuclideanDistance(
        std::span<const double>(series).subspan(p, len),
        std::span<const double>(series).subspan(q, len));
    EXPECT_NEAR(fast, naive, 1e-9) << "p=" << p << " q=" << q;
  }
}

TEST(SubsequenceDistanceTest, FlatWindowEpsilonIsConfigurable) {
  // With a tiny epsilon the near-flat window is z-normalized (noise blown
  // up to unit variance); with the default it is only centered. The two
  // oracles must disagree — this is what made the shared-epsilon bug in
  // interval ranking observable.
  std::vector<double> series(200, 0.0);
  Rng rng(7);
  for (size_t i = 0; i < 100; ++i) {
    series[i] = 1.0 + 0.001 * rng.Gaussian();
  }
  for (size_t i = 100; i < 200; ++i) {
    series[i] = std::sin(0.2 * static_cast<double>(i));
  }
  SubsequenceDistance centered(series);          // default epsilon = 0.01
  SubsequenceDistance normalized(series, 1e-9);  // everything z-normalized
  const double d_centered = centered.Distance(0, 120, 60);
  const double d_normalized = normalized.Distance(0, 120, 60);
  EXPECT_GT(std::abs(d_centered - d_normalized), 1e-3);
}

TEST(SubsequenceDistanceTest, AbandonsExactlyWhenTrueDistanceReachesLimit) {
  // Early-abandon semantics, exhaustively over random pairs: Distance
  // returns kInfinity iff the true distance >= limit, and otherwise the
  // exact value. The limit only short-circuits; it never perturbs results.
  std::vector<double> series = MakeSine(400, 31.0, 0.15, 23);
  SubsequenceDistance dist(series);
  Rng rng(41);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t len = 8 + rng.UniformInt(50);
    const size_t p = rng.UniformInt(series.size() - len + 1);
    const size_t q = rng.UniformInt(series.size() - len + 1);
    const double truth = dist.Distance(p, q, len);
    const double limit = truth * (0.25 + 1.5 * rng.UniformDouble()) + 1e-9;
    const double limited = dist.Distance(p, q, len, limit);
    if (truth >= limit) {
      EXPECT_EQ(limited, SubsequenceDistance::kInfinity)
          << "p=" << p << " q=" << q << " len=" << len;
    } else {
      EXPECT_EQ(limited, truth) << "p=" << p << " q=" << q << " len=" << len;
    }
  }
}

TEST(SubsequenceDistanceTest, CallCountIsExactUnderConcurrentUse) {
  // The relaxed atomic counter must not lose increments when one oracle is
  // shared by many threads — the invariant behind the paper's Table 1
  // accounting in the parallel searches.
  std::vector<double> series = MakeSine(500, 40.0, 0.1, 5);
  SubsequenceDistance dist(series);
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dist, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        (void)dist.Distance(static_cast<size_t>((t * 7 + i) % 400),
                            static_cast<size_t>((i * 13) % 400), 50, 1.0);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(dist.calls(),
            static_cast<uint64_t>(kThreads) * kCallsPerThread);
}

TEST(SubsequenceDistanceTest, HistogramAttachIsRaceFreeUnderConcurrentUse) {
  // Regression test: the histogram slot used to be a plain pointer, so
  // attaching while other threads were inside Distance() was a data race
  // (unsynchronized read/write of the same pointer). The slot is now a
  // relaxed atomic; this test attaches and detaches continuously while
  // worker threads hammer Distance(), and tsan must stay quiet. Counts
  // recorded are inherently approximate mid-flight, so afterwards a quiet
  // attach verifies the histogram still sees every completed call.
  std::vector<double> series = MakeSine(500, 40.0, 0.1, 8);
  SubsequenceDistance dist(series);
  obs::Histogram histogram;

  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&dist, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        (void)dist.Distance(static_cast<size_t>((t * 11 + i) % 400),
                            static_cast<size_t>((i * 17) % 400), 50);
      }
    });
  }
  // Toggle the slot while the workers run. The histogram outlives the
  // workers (stack order), satisfying the documented lifetime rule.
  for (int toggle = 0; toggle < 500; ++toggle) {
    dist.AttachDistanceHistogram(toggle % 2 == 0 ? &histogram : nullptr);
  }
  dist.AttachDistanceHistogram(nullptr);
  for (std::thread& t : workers) {
    t.join();
  }

  // With no concurrent toggling, every completed call must be recorded
  // (when observability is compiled in; otherwise Record() is a no-op).
  dist.ResetCalls();
  histogram.Reset();
  dist.AttachDistanceHistogram(&histogram);
  for (int i = 0; i < 100; ++i) {
    (void)dist.Distance(static_cast<size_t>(i % 300),
                        static_cast<size_t>((i * 3) % 300), 60);
  }
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(histogram.count(), dist.calls_completed());
    EXPECT_EQ(histogram.count(), 100u);
  }
  dist.AttachDistanceHistogram(nullptr);
}

TEST(SubsequenceDistanceTest, TriangleInequalityHolds) {
  std::vector<double> series = MakeRandomWalk(300, 1.0, 13);
  SubsequenceDistance dist(series);
  Rng rng(31);
  const size_t len = 25;
  for (int trial = 0; trial < 100; ++trial) {
    const size_t a = rng.UniformInt(series.size() - len + 1);
    const size_t b = rng.UniformInt(series.size() - len + 1);
    const size_t c = rng.UniformInt(series.size() - len + 1);
    const double ab = dist.Distance(a, b, len);
    const double bc = dist.Distance(b, c, len);
    const double ac = dist.Distance(a, c, len);
    EXPECT_LE(ac, ab + bc + 1e-9);
  }
}

}  // namespace
}  // namespace gva
