#include "discord/distance.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/simple.h"
#include "timeseries/znorm.h"
#include "util/rng.h"

namespace gva {
namespace {

TEST(EuclideanDistanceTest, KnownValues) {
  std::vector<double> a{0.0, 0.0};
  std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

TEST(ZNormEuclideanTest, ScaleInvariant) {
  std::vector<double> a{1.0, 2.0, 3.0, 2.0};
  std::vector<double> b{10.0, 20.0, 30.0, 20.0};
  EXPECT_NEAR(ZNormEuclideanDistance(a, b), 0.0, 1e-9);
}

TEST(SubsequenceDistanceTest, MatchesNaiveZnormDistance) {
  std::vector<double> series = MakeSine(300, 37.0, 0.1, 9);
  SubsequenceDistance dist(series);
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t len = 5 + rng.UniformInt(60);
    const size_t p = rng.UniformInt(series.size() - len + 1);
    const size_t q = rng.UniformInt(series.size() - len + 1);
    const double fast = dist.Distance(p, q, len);
    const double naive = ZNormEuclideanDistance(
        std::span<const double>(series).subspan(p, len),
        std::span<const double>(series).subspan(q, len));
    EXPECT_NEAR(fast, naive, 1e-6) << "p=" << p << " q=" << q << " len=" << len;
  }
}

TEST(SubsequenceDistanceTest, ZeroForIdenticalPositions) {
  std::vector<double> series = MakeSine(100, 20.0, 0.0, 3);
  SubsequenceDistance dist(series);
  EXPECT_NEAR(dist.Distance(10, 10, 30), 0.0, 1e-9);
}

TEST(SubsequenceDistanceTest, CountsEveryCall) {
  std::vector<double> series = MakeSine(100, 20.0, 0.1, 4);
  SubsequenceDistance dist(series);
  EXPECT_EQ(dist.calls(), 0u);
  (void)dist.Distance(0, 50, 20);
  (void)dist.Distance(1, 40, 20, 0.001);  // abandoned, still counted
  EXPECT_EQ(dist.calls(), 2u);
  dist.ResetCalls();
  EXPECT_EQ(dist.calls(), 0u);
}

TEST(SubsequenceDistanceTest, EarlyAbandonReturnsInfinity) {
  std::vector<double> series = MakeSine(200, 10.0, 0.2, 5);
  SubsequenceDistance dist(series);
  const double full = dist.Distance(0, 100, 50);
  ASSERT_GT(full, 0.0);
  // A limit below the true distance must abandon.
  EXPECT_EQ(dist.Distance(0, 100, 50, full * 0.5),
            SubsequenceDistance::kInfinity);
  // A limit above the true distance must return the exact value.
  EXPECT_NEAR(dist.Distance(0, 100, 50, full * 1.5), full, 1e-12);
}

TEST(SubsequenceDistanceTest, AbandonThresholdIsTight) {
  std::vector<double> series = MakeSine(200, 10.0, 0.2, 6);
  SubsequenceDistance dist(series);
  const double full = dist.Distance(3, 120, 40);
  // Limit exactly equal to the distance: the running sum reaches the limit
  // only at the very end; equality abandons (>=), which is safe because a
  // caller never needs a distance equal to its current nearest neighbor.
  EXPECT_EQ(dist.Distance(3, 120, 40, full),
            SubsequenceDistance::kInfinity);
}

TEST(SubsequenceDistanceTest, FlatWindowsUseCenteringOnly) {
  std::vector<double> series(100, 2.0);
  for (size_t i = 50; i < 100; ++i) {
    series[i] = 5.0;  // another flat level
  }
  SubsequenceDistance dist(series);
  // Both windows are flat; centered they are identical.
  EXPECT_NEAR(dist.Distance(0, 55, 20), 0.0, 1e-12);
}

TEST(SubsequenceDistanceTest, SymmetricInArguments) {
  std::vector<double> series = MakeRandomWalk(400, 1.0, 12);
  SubsequenceDistance dist(series);
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t len = 10 + rng.UniformInt(40);
    const size_t p = rng.UniformInt(series.size() - len + 1);
    const size_t q = rng.UniformInt(series.size() - len + 1);
    EXPECT_NEAR(dist.Distance(p, q, len), dist.Distance(q, p, len), 1e-9);
  }
}

TEST(SubsequenceDistanceTest, TriangleInequalityHolds) {
  std::vector<double> series = MakeRandomWalk(300, 1.0, 13);
  SubsequenceDistance dist(series);
  Rng rng(31);
  const size_t len = 25;
  for (int trial = 0; trial < 100; ++trial) {
    const size_t a = rng.UniformInt(series.size() - len + 1);
    const size_t b = rng.UniformInt(series.size() - len + 1);
    const size_t c = rng.UniformInt(series.size() - len + 1);
    const double ab = dist.Distance(a, b, len);
    const double bc = dist.Distance(b, c, len);
    const double ac = dist.Distance(a, c, len);
    EXPECT_LE(ac, ab + bc + 1e-9);
  }
}

}  // namespace
}  // namespace gva
