// The parallel discord searches promise bit-identical results for every
// thread count (DESIGN.md, "Concurrency model"): the shared best-so-far is
// only ever compared strictly, so a tying-or-winning candidate is never
// pruned, and the cross-chunk reduction uses a total order. These tests pin
// that contract for all three engines on an ECG-like generated series —
// periodic data with near-identical beats, exactly the regime where
// distance ties make a sloppy reduction visibly nondeterministic.

#include <vector>

#include <gtest/gtest.h>

#include "core/rra.h"
#include "datasets/ecg.h"
#include "discord/brute_force.h"
#include "discord/hotsax.h"
#include "discord/parallel_search.h"

namespace gva {
namespace {

TEST(BestCandidateTest, TotalOrderBreaksTiesByPositionThenLength) {
  const BestCandidate far{2.0, 50, 10, 0, -2, true};
  const BestCandidate near_low{1.0, 10, 10, 0, -2, true};
  const BestCandidate near_high{1.0, 30, 10, 0, -2, true};
  const BestCandidate near_low_short{1.0, 10, 5, 0, -2, true};
  const BestCandidate invalid;

  EXPECT_TRUE(far.Beats(near_low));
  EXPECT_FALSE(near_low.Beats(far));
  // Equal distance: the lowest start position wins, whatever order the
  // chunks report in.
  EXPECT_TRUE(near_low.Beats(near_high));
  EXPECT_FALSE(near_high.Beats(near_low));
  // Equal distance and position: the shorter interval wins.
  EXPECT_TRUE(near_low_short.Beats(near_low));
  // Anything valid beats the empty cell; the empty cell beats nothing.
  EXPECT_TRUE(near_high.Beats(invalid));
  EXPECT_FALSE(invalid.Beats(near_high));

  // Folding in either order yields the same winner.
  BestCandidate forward;
  forward.Consider(near_high);
  forward.Consider(near_low);
  BestCandidate backward;
  backward.Consider(near_low);
  backward.Consider(near_high);
  EXPECT_EQ(forward.position, 10u);
  EXPECT_EQ(backward.position, 10u);
}

TEST(SharedBestDistanceTest, OnlyRises) {
  SharedBestDistance best;
  EXPECT_EQ(best.load(), -1.0);
  best.RaiseTo(3.5);
  EXPECT_EQ(best.load(), 3.5);
  best.RaiseTo(2.0);  // lower: ignored
  EXPECT_EQ(best.load(), 3.5);
  best.RaiseTo(4.25);
  EXPECT_EQ(best.load(), 4.25);
}

constexpr size_t kThreadCounts[] = {1, 2, 4};

LabeledSeries EcgStrip(size_t beats) {
  EcgOptions ecg;
  ecg.num_beats = beats;
  ecg.anomalous_beats = {beats / 2};
  return MakeEcg(ecg);
}

void ExpectSameDiscords(const DiscordResult& base, const DiscordResult& other,
                        size_t threads) {
  ASSERT_EQ(base.discords.size(), other.discords.size())
      << "threads=" << threads;
  for (size_t i = 0; i < base.discords.size(); ++i) {
    EXPECT_EQ(base.discords[i].position, other.discords[i].position)
        << "threads=" << threads << " rank=" << i;
    EXPECT_EQ(base.discords[i].length, other.discords[i].length)
        << "threads=" << threads << " rank=" << i;
    // Bit-identical, not just close: every engine computes the winning
    // candidate's distance with the same sequence of IEEE operations
    // regardless of the thread count.
    EXPECT_EQ(base.discords[i].distance, other.discords[i].distance)
        << "threads=" << threads << " rank=" << i;
    EXPECT_EQ(base.discords[i].nn_position, other.discords[i].nn_position)
        << "threads=" << threads << " rank=" << i;
    EXPECT_EQ(base.discords[i].rule, other.discords[i].rule)
        << "threads=" << threads << " rank=" << i;
  }
}

TEST(ParallelDeterminismTest, BruteForceIsBitIdenticalAcrossThreadCounts) {
  LabeledSeries data = EcgStrip(24);
  auto base = FindDiscordsBruteForce(data.series, 100, 3, 1);
  ASSERT_TRUE(base.ok());
  ASSERT_FALSE(base->discords.empty());
  for (size_t threads : kThreadCounts) {
    auto run = FindDiscordsBruteForce(data.series, 100, 3, threads);
    ASSERT_TRUE(run.ok());
    ExpectSameDiscords(*base, *run, threads);
    // Brute force never prunes against a shared best, so even the call
    // count is invariant.
    EXPECT_EQ(run->distance_calls, base->distance_calls)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, HotSaxIsBitIdenticalAcrossThreadCounts) {
  LabeledSeries data = EcgStrip(40);
  HotSaxOptions options;
  options.sax.window = 120;
  options.sax.paa_size = 6;
  options.sax.alphabet_size = 4;
  options.top_k = 3;
  options.num_threads = 1;
  auto base = FindDiscordsHotSax(data.series, options);
  ASSERT_TRUE(base.ok());
  ASSERT_FALSE(base->discords.empty());
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    auto run = FindDiscordsHotSax(data.series, options);
    ASSERT_TRUE(run.ok());
    ExpectSameDiscords(*base, *run, threads);
  }
}

TEST(ParallelDeterminismTest, RraIsBitIdenticalAcrossThreadCounts) {
  LabeledSeries data = EcgStrip(40);
  RraOptions options;
  options.sax.window = 120;
  options.sax.paa_size = 6;
  options.sax.alphabet_size = 4;
  options.top_k = 3;
  options.num_threads = 1;
  auto base = FindRraDiscords(data.series, options);
  ASSERT_TRUE(base.ok());
  ASSERT_FALSE(base->result.discords.empty());
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    auto run = FindRraDiscords(data.series, options);
    ASSERT_TRUE(run.ok());
    ExpectSameDiscords(base->result, run->result, threads);
  }
}

TEST(ParallelDeterminismTest, RraApproximateModeIsAlsoDeterministic) {
  // The cheaper interval-aligned mode shares the same round structure and
  // cache discipline; it must honor the same contract.
  LabeledSeries data = EcgStrip(40);
  RraOptions options;
  options.sax.window = 120;
  options.sax.paa_size = 6;
  options.sax.alphabet_size = 4;
  options.top_k = 2;
  options.exact_nearest_neighbor = false;
  options.num_threads = 1;
  auto base = FindRraDiscords(data.series, options);
  ASSERT_TRUE(base.ok());
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    auto run = FindRraDiscords(data.series, options);
    ASSERT_TRUE(run.ok());
    ExpectSameDiscords(base->result, run->result, threads);
  }
}

TEST(ParallelDeterminismTest, ZeroMeansHardwareConcurrencyAndStillMatches) {
  LabeledSeries data = EcgStrip(24);
  auto base = FindDiscordsBruteForce(data.series, 100, 2, 1);
  auto all_cores = FindDiscordsBruteForce(data.series, 100, 2, 0);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(all_cores.ok());
  ExpectSameDiscords(*base, *all_cores, 0);
}

TEST(ParallelDeterminismTest, ParallelHotSaxStillMatchesBruteForceDiscord) {
  // Exactness survives parallelization: the top HOTSAX discord is the
  // brute-force discord, whatever the thread count.
  LabeledSeries data = EcgStrip(24);
  auto brute = FindDiscordsBruteForce(data.series, 120, 1, 2);
  HotSaxOptions options;
  options.sax.window = 120;
  options.sax.paa_size = 6;
  options.sax.alphabet_size = 4;
  options.num_threads = 4;
  auto hot = FindDiscordsHotSax(data.series, options);
  ASSERT_TRUE(brute.ok());
  ASSERT_TRUE(hot.ok());
  ASSERT_FALSE(brute->discords.empty());
  ASSERT_FALSE(hot->discords.empty());
  EXPECT_EQ(hot->discords[0].position, brute->discords[0].position);
  EXPECT_DOUBLE_EQ(hot->discords[0].distance, brute->discords[0].distance);
}

}  // namespace
}  // namespace gva
