#include "discord/hotsax.h"

#include <gtest/gtest.h>

#include "datasets/ecg.h"
#include "datasets/simple.h"
#include "discord/brute_force.h"
#include "timeseries/sliding_window.h"

namespace gva {
namespace {

bool HitsAnyTruthWindow(const DiscordRecord& discord,
                        const LabeledSeries& data) {
  for (const Interval& truth : data.anomalies) {
    if (discord.span().Overlaps(truth)) {
      return true;
    }
  }
  return false;
}

HotSaxOptions Opts(size_t window, size_t paa = 4, size_t alpha = 4,
                   size_t top_k = 1) {
  HotSaxOptions o;
  o.sax.window = window;
  o.sax.paa_size = paa;
  o.sax.alphabet_size = alpha;
  o.top_k = top_k;
  return o;
}

TEST(HotSaxTest, AgreesWithBruteForceOnDiscordDistance) {
  LabeledSeries data = MakeSineWithAnomaly(500, 40.0, 0.03, 250, 40, 3);
  auto brute = FindDiscordsBruteForce(data.series, 40, 1);
  auto hot = FindDiscordsHotSax(data.series, Opts(40));
  ASSERT_TRUE(brute.ok());
  ASSERT_TRUE(hot.ok());
  ASSERT_EQ(hot->discords.size(), 1u);
  // HOTSAX is exact: same discord distance (and, barring ties, the same
  // position).
  EXPECT_NEAR(hot->discords[0].distance, brute->discords[0].distance, 1e-9);
  EXPECT_EQ(hot->discords[0].position, brute->discords[0].position);
}

// Exactness must hold across discretization parameters — the SAX heuristic
// changes the visit order, never the result.
class HotSaxExactnessTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {
};

TEST_P(HotSaxExactnessTest, SameDiscordDistanceAsBruteForce) {
  const auto [paa, alpha, seed] = GetParam();
  LabeledSeries data = MakeSineWithAnomaly(400, 30.0, 0.05, 200, 30, seed);
  auto brute = FindDiscordsBruteForce(data.series, 30, 1);
  HotSaxOptions opts = Opts(30, paa, alpha);
  opts.seed = seed * 17 + 1;
  auto hot = FindDiscordsHotSax(data.series, opts);
  ASSERT_TRUE(brute.ok());
  ASSERT_TRUE(hot.ok());
  EXPECT_NEAR(hot->discords[0].distance, brute->discords[0].distance, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HotSaxExactnessTest,
    ::testing::Combine(::testing::Values<size_t>(3, 4, 6),
                       ::testing::Values<size_t>(3, 4, 6),
                       ::testing::Values<uint64_t>(1, 2, 3)));

TEST(HotSaxTest, UsesFewerCallsThanBruteForce) {
  EcgOptions ecg;
  ecg.num_beats = 30;
  LabeledSeries data = MakeEcg(ecg);
  auto brute = FindDiscordsBruteForce(data.series, 120, 1);
  auto hot = FindDiscordsHotSax(data.series, Opts(120));
  ASSERT_TRUE(brute.ok());
  ASSERT_TRUE(hot.ok());
  EXPECT_LT(hot->distance_calls, brute->distance_calls / 5)
      << "HOTSAX should prune the vast majority of calls";
}

TEST(HotSaxTest, FindsPlantedEcgAnomaly) {
  EcgOptions ecg;
  ecg.num_beats = 40;
  ecg.anomalous_beats = {25};
  LabeledSeries data = MakeEcg(ecg);
  auto hot = FindDiscordsHotSax(data.series, Opts(120));
  ASSERT_TRUE(hot.ok());
  ASSERT_EQ(hot->discords.size(), 1u);
  EXPECT_TRUE(HitsAnyTruthWindow(hot->discords[0], data));
}

TEST(HotSaxTest, TopKNonOverlappingAndSorted) {
  LabeledSeries data = MakeSineWithAnomaly(900, 45.0, 0.05, 450, 45, 7);
  auto hot = FindDiscordsHotSax(data.series, Opts(45, 4, 4, 4));
  ASSERT_TRUE(hot.ok());
  ASSERT_GE(hot->discords.size(), 2u);
  for (size_t i = 0; i < hot->discords.size(); ++i) {
    for (size_t j = i + 1; j < hot->discords.size(); ++j) {
      EXPECT_FALSE(IsSelfMatch(hot->discords[i].position,
                               hot->discords[j].position, 45));
    }
  }
  for (size_t i = 1; i < hot->discords.size(); ++i) {
    EXPECT_GE(hot->discords[i - 1].distance, hot->discords[i].distance);
  }
}

TEST(HotSaxTest, DeterministicForFixedSeed) {
  LabeledSeries data = MakeSineWithAnomaly(400, 40.0, 0.05, 200, 40, 9);
  auto a = FindDiscordsHotSax(data.series, Opts(40));
  auto b = FindDiscordsHotSax(data.series, Opts(40));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->distance_calls, b->distance_calls);
  EXPECT_EQ(a->discords[0].position, b->discords[0].position);
}

TEST(HotSaxTest, RejectsBadArguments) {
  std::vector<double> series(50, 0.0);
  EXPECT_FALSE(FindDiscordsHotSax(series, Opts(40)).ok());  // too short
  HotSaxOptions zero_k = Opts(10);
  zero_k.top_k = 0;
  std::vector<double> longer(100, 0.0);
  EXPECT_FALSE(FindDiscordsHotSax(longer, zero_k).ok());
}

}  // namespace
}  // namespace gva
