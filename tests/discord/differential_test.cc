// Differential correctness suite: each optimized search is pinned against
// an independent exhaustive reference over the same candidate set, at one
// and several threads.
//
//  - HOTSAX (rare-word ordering + early abandoning + shared-best pruning)
//    must report the same fixed-length discords as brute force.
//  - RRA (frequency ordering + alignment refinement + exhaustive tail)
//    must report the same best discord as a no-pruning exhaustive scan over
//    exactly the candidate intervals BuildRraCandidates assembles.
//
// Distances are compared with EXPECT_DOUBLE_EQ (not a tolerance): the
// searches early-abandon only losing scans, and a completed scan follows
// the same blocked summation order as an unlimited one, so agreement is
// exact by construction — any drift is a real bug in the pruning logic.

#include <gtest/gtest.h>

#include <vector>

#include "core/pipeline.h"
#include "core/rra.h"
#include "datasets/ecg.h"
#include "datasets/simple.h"
#include "discord/brute_force.h"
#include "discord/distance.h"
#include "discord/hotsax.h"
#include "discord/parallel_search.h"

namespace gva {
namespace {

class DifferentialTest : public ::testing::TestWithParam<size_t> {
 protected:
  size_t threads() const { return GetParam(); }
};

INSTANTIATE_TEST_SUITE_P(Threads, DifferentialTest,
                         ::testing::Values(1u, 4u),
                         [](const auto& param_info) {
                           return "threads_" + std::to_string(param_info.param);
                         });

// ---------------------------------------------------------------------------
// HOTSAX vs brute force.

void ExpectSameDiscords(const DiscordResult& fast,
                        const DiscordResult& reference) {
  ASSERT_EQ(fast.discords.size(), reference.discords.size());
  for (size_t k = 0; k < fast.discords.size(); ++k) {
    EXPECT_DOUBLE_EQ(fast.discords[k].distance,
                     reference.discords[k].distance)
        << "rank " << k;
    EXPECT_EQ(fast.discords[k].position, reference.discords[k].position)
        << "rank " << k;
    EXPECT_EQ(fast.discords[k].length, reference.discords[k].length)
        << "rank " << k;
  }
}

TEST_P(DifferentialTest, HotSaxEqualsBruteForceOnPlantedAnomaly) {
  const LabeledSeries data = MakeSineWithAnomaly(900, 60.0, 0.04, 450, 50, 11);
  HotSaxOptions options;
  options.sax.window = 60;
  options.top_k = 3;
  options.num_threads = threads();
  const auto fast = FindDiscordsHotSax(data.series, options);
  const auto reference =
      FindDiscordsBruteForce(data.series, 60, 3, threads());
  ASSERT_TRUE(fast.ok()) << fast.status();
  ASSERT_TRUE(reference.ok()) << reference.status();
  ExpectSameDiscords(*fast, *reference);
}

TEST_P(DifferentialTest, HotSaxEqualsBruteForceOnEcg) {
  EcgOptions ecg;
  ecg.num_beats = 12;  // ~1.4k points keeps the quadratic reference fast
  const LabeledSeries data = MakeEcg(ecg);
  HotSaxOptions options;
  options.sax.window = 120;
  options.top_k = 2;
  options.num_threads = threads();
  const auto fast = FindDiscordsHotSax(data.series, options);
  const auto reference =
      FindDiscordsBruteForce(data.series, 120, 2, threads());
  ASSERT_TRUE(fast.ok()) << fast.status();
  ASSERT_TRUE(reference.ok()) << reference.status();
  ExpectSameDiscords(*fast, *reference);
}

TEST_P(DifferentialTest, HotSaxEqualsBruteForceOnRandomWalk) {
  // Structureless input: every SAX bucket is crowded, so the orderings buy
  // little and the pruning paths get exercised hard.
  const std::vector<double> walk = MakeRandomWalk(700, 1.0, 23);
  HotSaxOptions options;
  options.sax.window = 50;
  options.top_k = 3;
  options.num_threads = threads();
  const auto fast = FindDiscordsHotSax(walk, options);
  const auto reference = FindDiscordsBruteForce(walk, 50, 3, threads());
  ASSERT_TRUE(fast.ok()) << fast.status();
  ASSERT_TRUE(reference.ok()) << reference.status();
  ExpectSameDiscords(*fast, *reference);
}

// ---------------------------------------------------------------------------
// RRA vs an exhaustive scan over the same candidate set.

/// No-pruning reference for the RRA search: for every candidate interval,
/// the exact (normalized) nearest-non-self-match distance over every
/// sliding position, reduced with the same BestCandidate total order the
/// search uses. O(candidates * series * length) — test-sized inputs only.
BestCandidate ExhaustiveBestOverCandidates(
    std::span<const double> series,
    const std::vector<RuleInterval>& candidates, bool normalize_by_length,
    double znorm_epsilon) {
  const SubsequenceDistance dist(series, znorm_epsilon);
  const size_t m = series.size();
  BestCandidate best;
  for (const RuleInterval& cand : candidates) {
    const size_t p = cand.span.start;
    const size_t len = cand.span.length();
    const double norm =
        normalize_by_length ? static_cast<double>(len) : 1.0;
    double nn = SubsequenceDistance::kInfinity;
    size_t nn_q = 0;
    for (size_t q = 0; q + len <= m; ++q) {
      const size_t gap = p > q ? p - q : q - p;
      if (gap < len) {
        continue;  // self match, same rule as the search
      }
      const double d = dist.Distance(p, q, len) / norm;
      if (d < nn) {
        nn = d;
        nn_q = q;
      }
    }
    if (nn != SubsequenceDistance::kInfinity) {
      best.Consider(BestCandidate{nn, p, len, nn_q, cand.rule, true});
    }
  }
  return best;
}

void ExpectRraMatchesExhaustive(std::span<const double> series,
                                const RraOptions& options) {
  const auto decomposition = DecomposeSeries(series, options.sax);
  ASSERT_TRUE(decomposition.ok()) << decomposition.status();
  const std::vector<RuleInterval> candidates =
      BuildRraCandidates(*decomposition, options);
  ASSERT_FALSE(candidates.empty());
  const BestCandidate expected = ExhaustiveBestOverCandidates(
      series, candidates, options.normalize_by_length,
      options.sax.znorm_epsilon);
  ASSERT_TRUE(expected.valid);

  const auto detection =
      FindRraDiscordsInDecomposition(series, *decomposition, options);
  ASSERT_TRUE(detection.ok()) << detection.status();
  ASSERT_FALSE(detection->discords.empty());
  const DiscordRecord& top = detection->discords[0];
  EXPECT_DOUBLE_EQ(top.distance, expected.distance);
  EXPECT_EQ(top.position, expected.position);
  EXPECT_EQ(top.length, expected.length);
}

TEST_P(DifferentialTest, RraEqualsExhaustiveOnPlantedAnomaly) {
  const LabeledSeries data =
      MakeSineWithAnomaly(1500, 100.0, 0.05, 750, 80, 7);
  RraOptions options;
  options.sax.window = 100;
  options.num_threads = threads();
  ExpectRraMatchesExhaustive(data.series, options);
}

TEST_P(DifferentialTest, RraEqualsExhaustiveOnEcg) {
  EcgOptions ecg;
  ecg.num_beats = 15;
  const LabeledSeries data = MakeEcg(ecg);
  RraOptions options;
  options.sax.window = 120;
  options.num_threads = threads();
  ExpectRraMatchesExhaustive(data.series, options);
}

TEST_P(DifferentialTest, RraEqualsExhaustiveWithoutLengthNormalization) {
  const LabeledSeries data =
      MakeSineWithAnomaly(1200, 80.0, 0.05, 600, 60, 19);
  RraOptions options;
  options.sax.window = 80;
  options.normalize_by_length = false;
  options.num_threads = threads();
  ExpectRraMatchesExhaustive(data.series, options);
}

TEST_P(DifferentialTest, RraApproximateModeNeverExceedsExhaustive) {
  // The approximate inner loop (no exhaustive tail) reports a distance at
  // least the true nearest-neighbor distance of its winning candidate —
  // alignment quantization can only miss closer neighbors, never invent
  // them. Differential bound rather than equality.
  const LabeledSeries data =
      MakeSineWithAnomaly(1200, 80.0, 0.05, 600, 60, 31);
  RraOptions options;
  options.sax.window = 80;
  options.exact_nearest_neighbor = false;
  options.num_threads = threads();
  const auto decomposition = DecomposeSeries(data.series, options.sax);
  ASSERT_TRUE(decomposition.ok()) << decomposition.status();
  const auto detection = FindRraDiscordsInDecomposition(
      data.series, *decomposition, options);
  ASSERT_TRUE(detection.ok()) << detection.status();
  ASSERT_FALSE(detection->discords.empty());
  const DiscordRecord& top = detection->discords[0];

  const SubsequenceDistance dist(data.series, options.sax.znorm_epsilon);
  const double norm = options.normalize_by_length
                          ? static_cast<double>(top.length)
                          : 1.0;
  double truth = SubsequenceDistance::kInfinity;
  for (size_t q = 0; q + top.length <= data.series.size(); ++q) {
    const size_t gap =
        top.position > q ? top.position - q : q - top.position;
    if (gap < top.length) {
      continue;
    }
    truth = std::min(truth, dist.Distance(top.position, q, top.length) / norm);
  }
  EXPECT_GE(top.distance, truth);
}

}  // namespace
}  // namespace gva
