#include "obs/export.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace gva {
namespace {

using obs::MetricSample;

MetricSample Counter(const std::string& name, uint64_t value) {
  MetricSample s;
  s.name = name;
  s.kind = MetricSample::Kind::kCounter;
  s.counter_value = value;
  return s;
}

MetricSample GaugeSample(const std::string& name, int64_t value) {
  MetricSample s;
  s.name = name;
  s.kind = MetricSample::Kind::kGauge;
  s.gauge_value = value;
  return s;
}

TEST(PrometheusNameTest, DotsBecomeUnderscoresWithPrefix) {
  EXPECT_EQ(obs::PrometheusSeriesName("stream.samples",
                                      MetricSample::Kind::kCounter),
            "gva_stream_samples_total");
  EXPECT_EQ(obs::PrometheusSeriesName("threadpool.queue.depth",
                                      MetricSample::Kind::kGauge),
            "gva_threadpool_queue_depth");
}

TEST(PrometheusNameTest, MicrosecondSuffixIsSpelledOut) {
  EXPECT_EQ(obs::PrometheusSeriesName("stream.last_report.us",
                                      MetricSample::Kind::kGauge),
            "gva_stream_last_report_microseconds");
  EXPECT_EQ(obs::PrometheusSeriesName("stage.sax.us",
                                      MetricSample::Kind::kCounter),
            "gva_stage_sax_microseconds_total");
}

TEST(PrometheusNameTest, InvalidCharactersAreEscaped) {
  EXPECT_EQ(
      obs::PrometheusSeriesName("weird name-with:chars",
                                MetricSample::Kind::kGauge),
      "gva_weird_name_with_chars");
}

// The exact exposition text is a wire contract with scrapers — pin it
// character for character so a formatting drift is a loud test failure,
// not a silently broken dashboard.
TEST(PrometheusRenderTest, GoldenText) {
  MetricSample histogram;
  histogram.name = "stream.report.latency.us";
  histogram.kind = MetricSample::Kind::kHistogram;
  histogram.histogram_count = 4;
  histogram.histogram_sum = 22.0;
  // One value < 1, two in [2,4), one in the unbounded last bucket.
  histogram.histogram_buckets = {
      {0, 1}, {2, 2}, {obs::kHistogramBuckets - 1, 1}};

  const std::string text = obs::RenderPrometheusText(
      {Counter("stream.samples", 1200), GaugeSample("telemetry.port", 9090),
       histogram});

  const std::string expected =
      "# HELP gva_stream_samples_total gva metric stream.samples\n"
      "# TYPE gva_stream_samples_total counter\n"
      "gva_stream_samples_total 1200\n"
      "# HELP gva_telemetry_port gva metric telemetry.port\n"
      "# TYPE gva_telemetry_port gauge\n"
      "gva_telemetry_port 9090\n"
      "# HELP gva_stream_report_latency_microseconds gva metric "
      "stream.report.latency.us\n"
      "# TYPE gva_stream_report_latency_microseconds histogram\n"
      "gva_stream_report_latency_microseconds_bucket{le=\"1\"} 1\n"
      "gva_stream_report_latency_microseconds_bucket{le=\"2\"} 1\n"
      "gva_stream_report_latency_microseconds_bucket{le=\"4\"} 3\n"
      "gva_stream_report_latency_microseconds_bucket{le=\"+Inf\"} 4\n"
      "gva_stream_report_latency_microseconds_sum 22.000000\n"
      "gva_stream_report_latency_microseconds_count 4\n";
  EXPECT_EQ(text, expected);
}

TEST(PrometheusRenderTest, EmptyHistogramStillEmitsInfAndCount) {
  MetricSample histogram;
  histogram.name = "empty.us";
  histogram.kind = MetricSample::Kind::kHistogram;
  const std::string text = obs::RenderPrometheusText({histogram});
  EXPECT_NE(text.find("gva_empty_microseconds_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("gva_empty_microseconds_count 0\n"), std::string::npos);
}

TEST(PrometheusRenderTest, RegistryOverloadRendersLiveMetrics) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "metrics disabled in this build";
  }
  obs::MetricsRegistry registry;
  registry.counter("a.count").Add(7);
  registry.gauge("b.depth").Set(-3);
  const std::string text = obs::RenderPrometheusText(registry);
  EXPECT_NE(text.find("gva_a_count_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("gva_b_depth -3\n"), std::string::npos);
}

TEST(HistogramQuantileTest, EmptyReturnsZero) {
  const std::vector<std::pair<size_t, uint64_t>> empty;
  EXPECT_EQ(obs::HistogramQuantile(empty, 0.5), 0.0);
}

TEST(HistogramQuantileTest, SingleBucketInterpolatesAcrossBounds) {
  // 10 samples, all in bucket 3 = [4, 8).
  const std::vector<std::pair<size_t, uint64_t>> buckets = {{3, 10}};
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(buckets, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(buckets, 0.5), 6.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(buckets, 1.0), 8.0);
}

TEST(HistogramQuantileTest, CrossesBucketsAtCumulativeMass) {
  // 90 samples in [1,2), 10 in [8,16): p50 inside the first bucket,
  // p95 halfway into the second's mass.
  const std::vector<std::pair<size_t, uint64_t>> buckets = {{1, 90}, {4, 10}};
  const double p50 = obs::HistogramQuantile(buckets, 0.50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LT(p50, 2.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(buckets, 0.95), 12.0);
}

TEST(HistogramQuantileTest, UnboundedTailYieldsLowerBound) {
  const std::vector<std::pair<size_t, uint64_t>> buckets = {
      {obs::kHistogramBuckets - 1, 5}};
  const double lower =
      obs::HistogramBucketBounds(obs::kHistogramBuckets - 1).first;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(buckets, 0.99), lower);
}

TEST(HistogramQuantileTest, MatchesLiveHistogramSample) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "metrics disabled in this build";
  }
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("t.us");
  for (int i = 0; i < 100; ++i) {
    h.Record(3.0);  // bucket [2, 4)
  }
  const std::vector<obs::MetricSample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 1u);
  const double p50 = obs::HistogramQuantile(samples[0], 0.5);
  EXPECT_GE(p50, 2.0);
  EXPECT_LE(p50, 4.0);
}

}  // namespace
}  // namespace gva
