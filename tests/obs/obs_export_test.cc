#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/rra.h"
#include "datasets/ecg.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/trace.h"

namespace gva {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ObsExportTest : public ::testing::Test {
 protected:
  std::string TmpPath(const std::string& name) {
    return ::testing::TempDir() + "gva_obs_export_" + name;
  }
  void TearDown() override {
    // The session toggles process-wide state; leave it off for other suites.
    obs::GlobalTracer().Disable();
    obs::GlobalTracer().Clear();
    obs::SetStageTimingEnabled(false);
  }
};

TEST_F(ObsExportTest, SessionWritesBothFilesOnDestruction) {
  const std::string trace_path = TmpPath("trace.json");
  const std::string metrics_path = TmpPath("metrics.json");
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  {
    obs::ObsSession::Options options;
    options.trace_path = trace_path;
    options.metrics_path = metrics_path;
    options.announce = false;
    obs::ObsSession session(options);
    EXPECT_TRUE(session.tracing());
    EXPECT_TRUE(session.metrics());
    GVA_OBS_SPAN("export_test.stage");
  }
  const std::string trace = ReadFileOrEmpty(trace_path);
  const std::string metrics = ReadFileOrEmpty(metrics_path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(metrics.find("\"metrics\""), std::string::npos);
  if constexpr (obs::kEnabled) {
    EXPECT_NE(trace.find("export_test.stage"), std::string::npos);
    EXPECT_NE(metrics.find("stage.export_test.stage.count"),
              std::string::npos);
  }
}

TEST_F(ObsExportTest, SearchUnderSessionExportsItsMetrics) {
  if constexpr (!obs::kEnabled) {
    return;
  }
  const std::string metrics_path = TmpPath("search_metrics.json");
  {
    obs::ObsSession::Options options;
    options.metrics_path = metrics_path;
    options.announce = false;
    obs::ObsSession session(options);

    EcgOptions ecg;
    ecg.num_beats = 20;
    const LabeledSeries data = MakeEcg(ecg);
    RraOptions rra;
    rra.sax.window = 120;
    rra.sax.paa_size = 4;
    rra.sax.alphabet_size = 4;
    rra.top_k = 1;
    auto detection = FindRraDiscords(data.series, rra);
    ASSERT_TRUE(detection.ok());
  }
  const std::string metrics = ReadFileOrEmpty(metrics_path);
  // The search-level accumulation, the stage spans, and the pool counters
  // all surface in one snapshot.
  EXPECT_NE(metrics.find("search.rra.calls.completed"), std::string::npos);
  EXPECT_NE(metrics.find("search.rra.discords"), std::string::npos);
  EXPECT_NE(metrics.find("stage.grammar.sequitur.us"), std::string::npos);
  EXPECT_NE(metrics.find("pool.tasks.inline"), std::string::npos);
}

TEST_F(ObsExportTest, MetricsOnlySessionLeavesTracerIdle) {
  const std::string metrics_path = TmpPath("only_metrics.json");
  {
    obs::ObsSession::Options options;
    options.metrics_path = metrics_path;
    options.announce = false;
    obs::ObsSession session(options);
    EXPECT_FALSE(session.tracing());
    EXPECT_FALSE(obs::GlobalTracer().enabled());
  }
  EXPECT_NE(ReadFileOrEmpty(metrics_path).find("\"metrics\""),
            std::string::npos);
}

}  // namespace
}  // namespace gva
