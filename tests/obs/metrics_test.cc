#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace gva::obs {
namespace {

// ---------------------------------------------------------------------------
// The compile-time switch. Both template variants are always instantiable,
// so the disabled path's properties are pinned here without a second build
// tree: the disabled primitives are empty types — no atomics, no storage —
// and every operation is a constexpr no-op.

static_assert(std::is_empty_v<BasicCounter<false>>,
              "disabled counter must carry no state");
static_assert(std::is_empty_v<BasicGauge<false>>,
              "disabled gauge must carry no state");
static_assert(std::is_empty_v<BasicHistogram<false>>,
              "disabled histogram must carry no state");
static_assert(sizeof(BasicCounter<true>) == sizeof(std::atomic<uint64_t>),
              "enabled counter is exactly one atomic");

// The no-op operations are usable in constant expressions — proof they
// touch no atomic (atomic RMW is not constexpr).
constexpr uint64_t DisabledCounterRoundTrip() {
  BasicCounter<false> c;
  c.Add(42);
  c.Reset();
  return c.value();
}
static_assert(DisabledCounterRoundTrip() == 0);

constexpr int64_t DisabledGaugeRoundTrip() {
  BasicGauge<false> g;
  g.Set(7);
  g.Add(3);
  g.RaiseTo(100);
  return g.value();
}
static_assert(DisabledGaugeRoundTrip() == 0);

constexpr uint64_t DisabledHistogramRoundTrip() {
  BasicHistogram<false> h;
  h.Record(3.5);
  return h.count() + h.bucket(0);
}
static_assert(DisabledHistogramRoundTrip() == 0);

// ---------------------------------------------------------------------------
// Enabled primitives.

TEST(CounterTest, AddsAndResets) {
  BasicCounter<true> c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddRaise) {
  BasicGauge<true> g;
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
  g.Add(15);
  EXPECT_EQ(g.value(), 10);
  g.RaiseTo(7);  // lower: no effect
  EXPECT_EQ(g.value(), 10);
  g.RaiseTo(25);
  EXPECT_EQ(g.value(), 25);
}

// ---------------------------------------------------------------------------
// Histogram bucket boundaries: base-2 geometric, identical for every
// histogram, stable across releases. Bucket 0 holds values < 1; bucket i
// holds [2^(i-1), 2^i); the last bucket is the overflow.

TEST(HistogramBucketsTest, BoundariesAreTheDocumentedPowersOfTwo) {
  EXPECT_EQ(HistogramBucketFor(-3.0), 0u);
  EXPECT_EQ(HistogramBucketFor(0.0), 0u);
  EXPECT_EQ(HistogramBucketFor(0.999), 0u);
  EXPECT_EQ(HistogramBucketFor(1.0), 1u);
  EXPECT_EQ(HistogramBucketFor(1.999), 1u);
  EXPECT_EQ(HistogramBucketFor(2.0), 2u);
  EXPECT_EQ(HistogramBucketFor(3.999), 2u);
  EXPECT_EQ(HistogramBucketFor(4.0), 3u);
  EXPECT_EQ(HistogramBucketFor(1024.0), 11u);
  EXPECT_EQ(HistogramBucketFor(std::numeric_limits<double>::quiet_NaN()), 0u);
  EXPECT_EQ(HistogramBucketFor(std::numeric_limits<double>::infinity()),
            kHistogramBuckets - 1);
}

TEST(HistogramBucketsTest, BoundsRoundTripThroughTheBucketRule) {
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    const auto [lower, upper] = HistogramBucketBounds(i);
    EXPECT_EQ(HistogramBucketFor(lower), i) << "bucket " << i;
    if (i + 1 < kHistogramBuckets) {
      EXPECT_EQ(HistogramBucketFor(upper), i + 1) << "bucket " << i;
      // Largest representable value strictly below the boundary stays in i.
      EXPECT_EQ(HistogramBucketFor(std::nextafter(upper, 0.0)), i);
    } else {
      EXPECT_TRUE(std::isinf(upper));
    }
  }
}

TEST(HistogramTest, RecordsCountSumAndBuckets) {
  BasicHistogram<true> h;
  h.Record(0.5);
  h.Record(1.5);
  h.Record(1.6);
  h.Record(100.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.6);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(HistogramBucketFor(100.0)), 1u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(MetricsRegistryTest, HandlesAreStableAcrossLookupsAndReset) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.count");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.histogram("x.hist");
  registry.counter("y.count");  // map growth must not move existing nodes
  registry.Reset();
  EXPECT_EQ(&registry.counter("x.count"), &a);
  EXPECT_EQ(&registry.histogram("x.hist"), &h1);
  if constexpr (kEnabled) {
    a.Add(3);
    h1.Record(2.0);
    EXPECT_EQ(registry.counter("x.count").value(), 3u);
    EXPECT_EQ(registry.histogram("x.hist").count(), 1u);
  }
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndTyped) {
  MetricsRegistry registry;
  registry.counter("b.count").Add(2);
  registry.gauge("a.depth").Set(-1);
  registry.histogram("c.hist").Record(3.0);
  const std::vector<MetricSample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "a.depth");
  EXPECT_EQ(snapshot[0].kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(snapshot[1].name, "b.count");
  EXPECT_EQ(snapshot[1].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(snapshot[2].name, "c.hist");
  EXPECT_EQ(snapshot[2].kind, MetricSample::Kind::kHistogram);
  if constexpr (kEnabled) {
    EXPECT_EQ(snapshot[0].gauge_value, -1);
    EXPECT_EQ(snapshot[1].counter_value, 2u);
    EXPECT_EQ(snapshot[2].histogram_count, 1u);
  }
}

TEST(MetricsRegistryTest, ToJsonNamesEveryMetric) {
  MetricsRegistry registry;
  registry.counter("search.calls").Add(5);
  registry.gauge("pool.depth").Set(2);
  registry.histogram("dist.hist").Record(1.5);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"search.calls\""), std::string::npos);
  EXPECT_NE(json.find("\"pool.depth\""), std::string::npos);
  EXPECT_NE(json.find("\"dist.hist\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Thread-safety: the same fixed workload driven through 1, 2, and 8 lanes
// must land on identical totals — relaxed atomics lose no increments.

TEST(MetricsConcurrencyTest, CounterTotalsAreThreadCountInvariant) {
  constexpr size_t kItems = 100000;
  std::vector<uint64_t> totals;
  for (size_t threads : {1u, 2u, 8u}) {
    MetricsRegistry registry;
    Counter& c = registry.counter("work.items");
    Histogram& h = registry.histogram("work.value");
    ThreadPool pool(threads);
    pool.ParallelFor(0, kItems, [&](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) {
        c.Add();
        h.Record(static_cast<double>(i % 7));
      }
    });
    totals.push_back(c.value());
    EXPECT_EQ(h.count(), c.value()) << "threads " << threads;
  }
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(totals[1], totals[2]);
  if constexpr (kEnabled) {
    EXPECT_EQ(totals[0], kItems);
  } else {
    EXPECT_EQ(totals[0], 0u);
  }
}

TEST(MetricsConcurrencyTest, ConcurrentRegistryLookupsAreSafe) {
  // Lookup is the mutex-guarded slow path; hammer it from all lanes to give
  // TSan something to chew on and assert the handles agree afterwards.
  MetricsRegistry registry;
  ThreadPool pool(8);
  pool.ParallelFor(0, 64, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      registry.counter("shared.count").Add();
      registry.gauge("shared.depth").RaiseTo(static_cast<int64_t>(i));
      registry.histogram("shared.hist").Record(1.0);
    }
  });
  if constexpr (kEnabled) {
    EXPECT_EQ(registry.counter("shared.count").value(), 64u);
    EXPECT_EQ(registry.gauge("shared.depth").value(), 63);
    EXPECT_EQ(registry.histogram("shared.hist").count(), 64u);
  }
}

}  // namespace
}  // namespace gva::obs
