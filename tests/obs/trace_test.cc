#include "obs/trace.h"

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace gva::obs {
namespace {

/// Test-scoped capture on the global tracer (the macro records there).
class GlobalTraceCapture {
 public:
  GlobalTraceCapture() { GlobalTracer().Enable(); }
  ~GlobalTraceCapture() {
    GlobalTracer().Disable();
    GlobalTracer().Clear();
    SetStageTimingEnabled(false);
  }
};

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.RecordComplete("x", "gva", 0, 5);
  // RecordComplete is the low-level sink and always appends; the gating
  // lives in ScopedSpan. So this event lands:
  EXPECT_EQ(tracer.event_count(), 1u);
  tracer.Clear();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TracerTest, EnableClearsAndReanchors) {
  Tracer tracer;
  tracer.RecordComplete("stale", "gva", 0, 1);
  tracer.Enable();
  EXPECT_TRUE(tracer.enabled());
  EXPECT_EQ(tracer.event_count(), 0u);
  const uint64_t t0 = tracer.NowMicros();
  EXPECT_LT(t0, 1000000u);  // origin re-anchored: near zero, not epoch-scale
  tracer.Disable();
  EXPECT_FALSE(tracer.enabled());
}

TEST(TracerTest, JsonIsChromeTraceShaped) {
  Tracer tracer;
  tracer.Enable();
  tracer.RecordComplete("alpha", "gva", 10, 20);
  tracer.RecordComplete("beta", "gva", 15, 5);
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 20"), std::string::npos);
}

TEST(TracerTest, ThreadsGetDenseDistinctTids) {
  Tracer tracer;
  tracer.Enable();
  tracer.RecordComplete("caller", "gva", 0, 1);
  std::thread other([&] { tracer.RecordComplete("worker", "gva", 1, 1); });
  other.join();
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"tid\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
  EXPECT_EQ(json.find("\"tid\": 2"), std::string::npos);
}

TEST(ScopedSpanTest, IdleSpanIsANoOp) {
  GlobalTracer().Disable();
  GlobalTracer().Clear();
  {
    GVA_OBS_SPAN("should.not.record");
  }
  EXPECT_EQ(GlobalTracer().event_count(), 0u);
}

TEST(ScopedSpanTest, NestedSpansAreContainedIntervals) {
  GlobalTraceCapture capture;
  {
    ScopedSpan outer("outer");
    {
      ScopedSpan inner("inner");
    }
  }
  if constexpr (!kEnabled) {
    return;  // spans compile to nothing with GVA_OBS=OFF
  }
  ASSERT_EQ(GlobalTracer().event_count(), 2u);
  const std::string json = GlobalTracer().ToJson();
  // Inner is destroyed (and thus recorded) first.
  const size_t inner_at = json.find("\"name\": \"inner\"");
  const size_t outer_at = json.find("\"name\": \"outer\"");
  ASSERT_NE(inner_at, std::string::npos);
  ASSERT_NE(outer_at, std::string::npos);
  EXPECT_LT(inner_at, outer_at);
}

TEST(TracerTest, OpenSpanIsSynthesizedInJsonAtDumpTime) {
  GlobalTraceCapture capture;
  auto span = std::make_unique<ScopedSpan>("still.open");
  if constexpr (!kEnabled) {
    return;  // spans compile to nothing with GVA_OBS=OFF
  }
  // Dump while the span's destructor has not run: it must appear as a
  // complete event with a synthesized end, and the JSON must stay valid
  // (no dangling comma, balanced brackets).
  ASSERT_EQ(GlobalTracer().event_count(), 0u);
  EXPECT_EQ(GlobalTracer().open_span_count(), 1u);
  const std::string json = GlobalTracer().ToJson();
  EXPECT_NE(json.find("\"name\": \"still.open\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_EQ(json.find(",\n]"), std::string::npos);
  EXPECT_NE(json.find("]}"), std::string::npos);

  // Ending the span afterwards records it exactly once.
  span.reset();
  EXPECT_EQ(GlobalTracer().open_span_count(), 0u);
  EXPECT_EQ(GlobalTracer().event_count(), 1u);
}

TEST(TracerTest, SpanCrossingDisableIsDroppedNotLeaked) {
  GlobalTracer().Enable();
  auto span = std::make_unique<ScopedSpan>("crosses.disable");
  GlobalTracer().Disable();
  span.reset();  // CompleteOpen pops the stack but must not record
  if constexpr (kEnabled) {
    EXPECT_EQ(GlobalTracer().open_span_count(), 0u);
    EXPECT_EQ(GlobalTracer().event_count(), 0u);
  }
  GlobalTracer().Clear();
}

TEST(ScopedSpanTest, PoolChunksRecordPerThreadSpans) {
  GlobalTraceCapture capture;
  ThreadPool pool(4);
  pool.ParallelFor(0, 4, [&](size_t, size_t, size_t) {
    GVA_OBS_SPAN("chunk");
  });
  if constexpr (!kEnabled) {
    return;
  }
  EXPECT_EQ(GlobalTracer().event_count(), 4u);
  // Every span names the thread that ran it; tids are dense from 0.
  const std::string json = GlobalTracer().ToJson();
  EXPECT_NE(json.find("\"tid\": 0"), std::string::npos);
}

TEST(ScopedSpanTest, StageTimingFeedsTheGlobalRegistry) {
  if constexpr (!kEnabled) {
    return;
  }
  GlobalTraceCapture capture;
  SetStageTimingEnabled(true);
  GlobalMetrics().Reset();
  {
    ScopedSpan span("teststage.alpha");
  }
  {
    ScopedSpan span("teststage.alpha");
  }
  SetStageTimingEnabled(false);
  EXPECT_EQ(GlobalMetrics().counter("stage.teststage.alpha.count").value(),
            2u);
  // .us is duration-dependent; only its existence and monotonicity are
  // stable. Two instant spans may still round to 0 microseconds.
  EXPECT_GE(GlobalMetrics().counter("stage.teststage.alpha.us").value(), 0u);
}

}  // namespace
}  // namespace gva::obs
