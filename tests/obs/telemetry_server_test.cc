#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/session.h"

namespace gva {
namespace {

/// Blocking one-shot HTTP GET over a raw socket; returns the full response
/// (headers + body), or empty on any failure.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return std::string();
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return std::string();
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) {
      ::close(fd);
      return std::string();
    }
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      break;  // server closes after one response
    }
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class TelemetryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TelemetryServer::Options options;  // port 0: ephemeral
    auto server = obs::TelemetryServer::Start(options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
    ASSERT_NE(server_->port(), 0);
  }

  std::unique_ptr<obs::TelemetryServer> server_;
};

TEST_F(TelemetryServerTest, MetricsRouteServesPrometheusText) {
  obs::GlobalMetrics().counter("telemetry_test.hits").Add(3);
  const std::string response = HttpGet(server_->port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  if constexpr (obs::kEnabled) {
    EXPECT_NE(response.find("gva_telemetry_test_hits_total 3"),
              std::string::npos);
  }
}

TEST_F(TelemetryServerTest, MetricsJsonRouteServesRegistryJson) {
  const std::string response = HttpGet(server_->port(), "/metrics.json");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("\"metrics\""), std::string::npos);
}

TEST_F(TelemetryServerTest, HealthzReportsOkAndBackend) {
  const std::string response = HttpGet(server_->port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(response.find("\"backend\": \""), std::string::npos);
  EXPECT_NE(response.find("\"uptime_us\": "), std::string::npos);
}

TEST_F(TelemetryServerTest, FlightzServesChromeTraceJson) {
  const std::string response = HttpGet(server_->port(), "/flightz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"traceEvents\""), std::string::npos);
}

TEST_F(TelemetryServerTest, UnknownPathIs404) {
  const std::string response = HttpGet(server_->port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.1 404 Not Found"), std::string::npos);
}

TEST_F(TelemetryServerTest, QueryStringIsIgnoredForRouting) {
  const std::string response = HttpGet(server_->port(), "/healthz?probe=1");
  EXPECT_NE(response.find("\"status\": \"ok\""), std::string::npos);
}

TEST_F(TelemetryServerTest, RequestCounterAdvancesPerScrape) {
  const uint64_t before = server_->requests_served();
  HttpGet(server_->port(), "/metrics");
  HttpGet(server_->port(), "/healthz");
  EXPECT_EQ(server_->requests_served(), before + 2);
  if constexpr (obs::kEnabled) {
    const std::string response = HttpGet(server_->port(), "/metrics");
    EXPECT_NE(response.find("gva_telemetry_requests_total"),
              std::string::npos);
  }
}

// The ObsSession constructor resets the whole global registry — including
// the server's own `telemetry.*` series. The contract: the very next
// scrape re-publishes them, so a Prometheus target never loses the series
// across an instrumented run.
TEST_F(TelemetryServerTest, TelemetrySeriesSurviveObsSessionReset) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability disabled in this build";
  }
  const std::string before = HttpGet(server_->port(), "/metrics");
  ASSERT_NE(before.find("gva_telemetry_port"), std::string::npos);

  const std::string metrics_path =
      ::testing::TempDir() + "gva_telemetry_reset_metrics.json";
  {
    obs::ObsSession::Options options;
    options.metrics_path = metrics_path;
    options.announce = false;
    obs::ObsSession session(options);  // constructor resets GlobalMetrics()
    const std::string during = HttpGet(server_->port(), "/metrics");
    // Scraping inside the session window re-registers the gauge with the
    // live port value.
    const std::string expected =
        "gva_telemetry_port " + std::to_string(server_->port());
    EXPECT_NE(during.find(expected), std::string::npos) << during;
  }
  std::remove(metrics_path.c_str());
}

// tsan workload: four mutator threads hammer counters/gauges/histograms
// while two scrapers render /metrics — the registry snapshot and the
// exposition renderer must be race-free against live mutation.
TEST_F(TelemetryServerTest, ConcurrentScrapeAndMutationIsRaceFree) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> mutators;
  for (int t = 0; t < 4; ++t) {
    mutators.emplace_back([t, &stop] {
      obs::MetricsRegistry& metrics = obs::GlobalMetrics();
      obs::Counter& counter = metrics.counter("telemetry_test.storm.count");
      obs::Gauge& gauge = metrics.gauge("telemetry_test.storm.depth");
      obs::Histogram& histogram =
          metrics.histogram("telemetry_test.storm.us");
      while (!stop.load(std::memory_order_relaxed)) {
        counter.Add(1);
        gauge.Set(t);
        histogram.Record(static_cast<double>(t) * 7.0);
      }
    });
  }
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([this] {
      for (int i = 0; i < 10; ++i) {
        const std::string response = HttpGet(server_->port(), "/metrics");
        EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
      }
    });
  }
  for (std::thread& s : scrapers) {
    s.join();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& m : mutators) {
    m.join();
  }
}

TEST(TelemetryServerStartTest, RejectsBadBindAddress) {
  obs::TelemetryServer::Options options;
  options.bind_address = "not-an-address";
  auto server = obs::TelemetryServer::Start(options);
  EXPECT_FALSE(server.ok());
}

TEST(TelemetryServerStartTest, PortCollisionFailsCleanly) {
  obs::TelemetryServer::Options options;
  auto first = obs::TelemetryServer::Start(options);
  ASSERT_TRUE(first.ok());
  options.port = first.value()->port();
  auto second = obs::TelemetryServer::Start(options);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kIoError);
}

TEST(GlobalTelemetryTest, StartScrapeStopIsIdempotent) {
  obs::StopGlobalTelemetry();  // clean slate; safe without a prior Start
  EXPECT_EQ(obs::GlobalTelemetry(), nullptr);

  obs::TelemetryServer::Options options;
  ASSERT_TRUE(obs::StartGlobalTelemetry(options).ok());
  ASSERT_NE(obs::GlobalTelemetry(), nullptr);
  const uint16_t port = obs::GlobalTelemetry()->port();
  EXPECT_NE(HttpGet(port, "/healthz").find("\"status\": \"ok\""),
            std::string::npos);

  // Second start while running: refused, first server keeps serving.
  EXPECT_EQ(obs::StartGlobalTelemetry(options).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(obs::GlobalTelemetry()->port(), port);

  obs::StopGlobalTelemetry();
  obs::StopGlobalTelemetry();  // double stop: no-op
  EXPECT_EQ(obs::GlobalTelemetry(), nullptr);
}

}  // namespace
}  // namespace gva
