#include "obs/recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace gva {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Minimal recursive-descent JSON validator — enough to prove a dump is
/// well-formed without a JSON library. Numbers, strings (no escapes needed
/// here), bools, null, arrays, objects.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }
  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        SkipWs();
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      ++pos_;
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// The recorder is a process-wide singleton with monotonic rings, so the
// tests assert on deltas and on the *presence* of their own uniquely named
// spans rather than on a pristine global state.

TEST(FlightRecorderTest, BeginEndBecomesCompleteEvent) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.RecordBegin("flight_test.pair", "test");
  recorder.RecordEnd("flight_test.pair");
  const std::string json = recorder.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"name\": \"flight_test.pair\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(FlightRecorderTest, OpenSpanIsSynthesizedAtDumpTime) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.RecordBegin("flight_test.open", "test");
  const std::string json = recorder.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  // The begin had no end, yet it shows up as a complete event.
  EXPECT_GE(CountOccurrences(json, "\"name\": \"flight_test.open\""), 1u);
  recorder.RecordEnd("flight_test.open");  // restore balance for later tests
}

TEST(FlightRecorderTest, EventsRecordedAdvancesAndRingBounds) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  const uint64_t before = recorder.events_recorded();
  // Overfill this thread's ring: only the newest ~kFlightSlotsPerThread
  // events survive, but the monotonic counter sees every write.
  const size_t spans = obs::kFlightSlotsPerThread;
  for (size_t i = 0; i < spans; ++i) {
    recorder.RecordBegin("flight_test.wrap", "test");
    recorder.RecordEnd("flight_test.wrap");
  }
  EXPECT_EQ(recorder.events_recorded() - before, 2 * spans);
  const std::string json = recorder.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid());
  const size_t emitted = CountOccurrences(json, "\"flight_test.wrap\"");
  EXPECT_GE(emitted, 1u);
  EXPECT_LE(emitted, obs::kFlightSlotsPerThread);
}

TEST(FlightRecorderTest, EachThreadGetsItsOwnTrack) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  const size_t threads_before = recorder.threads_seen();
  std::thread worker([&recorder] {
    recorder.RecordBegin("flight_test.worker", "test");
    recorder.RecordEnd("flight_test.worker");
  });
  worker.join();
  EXPECT_GE(recorder.threads_seen(), threads_before + 1);
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"flight_test.worker\""), std::string::npos);
}

TEST(FlightRecorderTest, ConcurrentRecordAndDumpStaysWellFormed) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&recorder, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        recorder.RecordBegin("flight_test.storm", "test");
        recorder.RecordEnd("flight_test.storm");
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    const std::string json = recorder.ToJson();
    ASSERT_TRUE(JsonValidator(json).Valid());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) {
    w.join();
  }
}

TEST(FlightRecorderTest, DumpToFdMatchesToJsonShape) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.RecordBegin("flight_test.fd", "test");
  recorder.RecordEnd("flight_test.fd");
  const std::string path = ::testing::TempDir() + "gva_flight_fd_test.json";
  std::remove(path.c_str());
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  recorder.DumpToFd(fd);
  ::close(fd);
  const std::string json = ReadFileOrEmpty(path);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"flight_test.fd\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, WriteJsonWritesTheSameDocument) {
  const std::string path = ::testing::TempDir() + "gva_flight_wj_test.json";
  std::remove(path.c_str());
  ASSERT_TRUE(obs::FlightRecorder::Global().WriteJson(path).ok());
  EXPECT_TRUE(JsonValidator(ReadFileOrEmpty(path)).Valid());
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, ScopedSpanFeedsTheRecorderEvenWithTracerOff) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability disabled in this build";
  }
  ASSERT_FALSE(obs::GlobalTracer().enabled());
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  const uint64_t before = recorder.events_recorded();
  {
    GVA_OBS_SPAN("flight_test.alwayson");
  }
  EXPECT_EQ(recorder.events_recorded() - before, 2u);
  EXPECT_NE(recorder.ToJson().find("\"flight_test.alwayson\""),
            std::string::npos);
}

}  // namespace
}  // namespace gva
