#include "util/strings.h"

#include <gtest/gtest.h>

namespace gva {
namespace {

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(SplitTest, Basics) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(SplitJoinTest, RoundTrip) {
  std::vector<std::string> parts{"alpha", "", "gamma", "d"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StripWhitespaceTest, Basics) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\r\nx\n"), "x");
  EXPECT_EQ(StripWhitespace("nospace"), "nospace");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 2, 2, 4), "2 + 2 = 4");
  EXPECT_EQ(StrFormat("%.3f", 3.14159), "3.142");
  EXPECT_EQ(StrFormat("%s/%zu", "a", static_cast<size_t>(9)), "a/9");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(FormatWithThousandsTest, MatchesPaperTypography) {
  EXPECT_EQ(FormatWithThousands(0), "0");
  EXPECT_EQ(FormatWithThousands(999), "999");
  EXPECT_EQ(FormatWithThousands(1000), "1'000");
  EXPECT_EQ(FormatWithThousands(112405), "112'405");
  EXPECT_EQ(FormatWithThousands(271442101), "271'442'101");
  EXPECT_EQ(FormatWithThousands(1130000000000ULL), "1'130'000'000'000");
}

}  // namespace
}  // namespace gva
