#include "util/math_utils.h"

#include <cmath>

#include <gtest/gtest.h>

namespace gva {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.0), 0.15865525393145705, 1e-9);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
}

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-9);
  // The classic SAX breakpoints for alphabet size 4 are -0.6745, 0, 0.6745.
  EXPECT_NEAR(InverseNormalCdf(0.25), -0.6744897501960817, 1e-7);
  EXPECT_NEAR(InverseNormalCdf(0.75), 0.6744897501960817, 1e-7);
  // Alphabet size 3: -0.4307..., 0.4307...
  EXPECT_NEAR(InverseNormalCdf(1.0 / 3.0), -0.4307272992954576, 1e-7);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959963984540054, 1e-7);
}

TEST(InverseNormalCdfTest, RoundTripsWithCdf) {
  for (double p = 0.001; p < 1.0; p += 0.0173) {
    EXPECT_NEAR(NormalCdf(InverseNormalCdf(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(InverseNormalCdfTest, TailsAreFinite) {
  EXPECT_TRUE(std::isfinite(InverseNormalCdf(1e-12)));
  EXPECT_TRUE(std::isfinite(InverseNormalCdf(1.0 - 1e-12)));
  EXPECT_LT(InverseNormalCdf(1e-12), -6.0);
  EXPECT_GT(InverseNormalCdf(1.0 - 1e-12), 6.0);
}

TEST(InverseNormalCdfTest, Antisymmetric) {
  for (double p : {0.01, 0.1, 0.3, 0.45}) {
    EXPECT_NEAR(InverseNormalCdf(p), -InverseNormalCdf(1.0 - p), 1e-9);
  }
}

TEST(InverseNormalCdfDeathTest, RejectsOutOfDomain) {
  EXPECT_DEATH((void)InverseNormalCdf(0.0), "p=");
  EXPECT_DEATH((void)InverseNormalCdf(1.0), "p=");
}

TEST(CeilDivTest, Basics) {
  EXPECT_EQ(CeilDiv(0, 3), 0u);
  EXPECT_EQ(CeilDiv(1, 3), 1u);
  EXPECT_EQ(CeilDiv(3, 3), 1u);
  EXPECT_EQ(CeilDiv(4, 3), 2u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
}

}  // namespace
}  // namespace gva
