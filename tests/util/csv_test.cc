#include "util/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace gva {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/gva_csv_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& contents) {
    std::ofstream out(path_);
    out << contents;
  }

  std::string path_;
};

TEST_F(CsvTest, ParseDoubleAcceptsCommonForms) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -2 "), -2.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e-3"), 0.001);
}

TEST_F(CsvTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.2x").ok());
}

TEST_F(CsvTest, ReadsSingleColumn) {
  WriteFile("1.0\n2.5\n-3\n");
  auto values = ReadCsvColumn(path_);
  ASSERT_TRUE(values.ok()) << values.status();
  EXPECT_EQ(*values, (std::vector<double>{1.0, 2.5, -3.0}));
}

TEST_F(CsvTest, SkipsBlankAndCommentLines) {
  WriteFile("# header comment\n1\n\n2\n   \n3\n");
  auto values = ReadCsvColumn(path_);
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*values, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST_F(CsvTest, ToleratesHeaderRow) {
  WriteFile("value\n1\n2\n");
  auto values = ReadCsvColumn(path_);
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*values, (std::vector<double>{1.0, 2.0}));
}

TEST_F(CsvTest, ReadsRequestedColumn) {
  WriteFile("t,v\n0,10\n1,20\n2,30\n");
  auto values = ReadCsvColumn(path_, 1);
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*values, (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST_F(CsvTest, FailsOnMissingColumn) {
  WriteFile("1,2\n3\n");
  auto values = ReadCsvColumn(path_, 1);
  EXPECT_FALSE(values.ok());
  EXPECT_EQ(values.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, FailsOnMalformedDataLine) {
  WriteFile("1\nnot_a_number\n3\n");
  auto values = ReadCsvColumn(path_);
  EXPECT_FALSE(values.ok());
}

TEST_F(CsvTest, FailsOnMissingFile) {
  auto values = ReadCsvColumn("/nonexistent/path/file.csv");
  EXPECT_FALSE(values.ok());
  EXPECT_EQ(values.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, WriteReadRoundTrip) {
  std::vector<double> values{1.5, -2.25, 1e-6, 123456.789};
  ASSERT_TRUE(WriteCsvColumn(path_, values, "v").ok());
  auto back = ReadCsvColumn(path_);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ((*back)[i], values[i]);
  }
}

TEST_F(CsvTest, WritesMultipleColumns) {
  ASSERT_TRUE(
      WriteCsvColumns(path_, {"a", "b"}, {{1.0, 2.0}, {3.0, 4.0}}).ok());
  auto a = ReadCsvColumn(path_, 0);
  auto b = ReadCsvColumn(path_, 1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(*b, (std::vector<double>{3.0, 4.0}));
}

TEST_F(CsvTest, RejectsMismatchedColumns) {
  EXPECT_FALSE(WriteCsvColumns(path_, {"a"}, {{1.0}, {2.0}}).ok());
  EXPECT_FALSE(WriteCsvColumns(path_, {"a", "b"}, {{1.0}, {2.0, 3.0}}).ok());
}

}  // namespace
}  // namespace gva
