#include "util/json.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "util/status.h"

namespace gva {
namespace {

TEST(ParseJsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->as_bool());
  EXPECT_FALSE(ParseJson("false")->as_bool());
  EXPECT_DOUBLE_EQ(ParseJson("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-3.25e2")->as_number(), -325.0);
  EXPECT_EQ(ParseJson("\"hi\"")->as_string(), "hi");
}

TEST(ParseJsonTest, ParsesNestedStructures) {
  auto doc = ParseJson(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[0].as_number(), 1.0);
  const JsonValue* b = a->items()[2].Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->as_bool());
  EXPECT_EQ(doc->Find("c")->as_string(), "x");
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(ParseJsonTest, ObjectMembersKeepInsertionOrder) {
  auto doc = ParseJson(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->members().size(), 3u);
  EXPECT_EQ(doc->members()[0].first, "z");
  EXPECT_EQ(doc->members()[1].first, "a");
  EXPECT_EQ(doc->members()[2].first, "m");
}

TEST(ParseJsonTest, DecodesEscapes) {
  auto doc = ParseJson(R"("line\n\t\"q\" \\ \u0041 \u00e9 \ud83d\ude00")");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->as_string(), "line\n\t\"q\" \\ A \xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(ParseJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());          // trailing comma
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());     // missing colon
  EXPECT_FALSE(ParseJson("1 2").ok());           // trailing garbage
  EXPECT_FALSE(ParseJson("'single'").ok());      // wrong quotes
  EXPECT_FALSE(ParseJson("{a: 1}").ok());        // unquoted key
  EXPECT_FALSE(ParseJson("// comment\n1").ok()); // comments
  EXPECT_FALSE(ParseJson("\"\\ud83d\"").ok());   // lone surrogate
  EXPECT_FALSE(ParseJson("nul").ok());
  for (const char* bad : {"{", "[1,]", "1 2"}) {
    EXPECT_EQ(ParseJson(bad).status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ParseJsonTest, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep.append(100, ']');
  auto doc = ParseJson(deep);
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);

  // 32 levels is comfortably inside the cap.
  std::string ok(32, '[');
  ok += "1";
  ok.append(32, ']');
  EXPECT_TRUE(ParseJson(ok).ok());
}

TEST(ParseJsonTest, ReportsByteOffsetInErrors) {
  auto doc = ParseJson("[1, 2, oops]");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().ToString().find("7"), std::string::npos)
      << doc.status().ToString();
}

TEST(JsonDumpTest, RoundTripIsBitExactForDoubles) {
  // The server's result JSON must reparse to the exact double the detector
  // produced — %.17g guarantees it.
  const double values[] = {0.0, 1.0 / 3.0, 1e-300, 6.0891742720344588,
                           -14.573329369448601};
  for (const double v : values) {
    JsonValue num = JsonValue::Number(v);
    auto back = ParseJson(num.Dump());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->as_number(), v) << num.Dump();
  }
}

TEST(JsonDumpTest, DumpsCompactDocument) {
  JsonValue obj = JsonValue::Object();
  obj.Set("id", JsonValue::Number(7));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::String("a\"b"));
  arr.Append(JsonValue::Bool(true));
  arr.Append(JsonValue::Null());
  obj.Set("items", std::move(arr));
  EXPECT_EQ(obj.Dump(), R"({"id":7,"items":["a\"b",true,null]})");
}

TEST(JsonDumpTest, NonFiniteNumbersRenderAsNull) {
  EXPECT_EQ(JsonValue::Number(std::nan("")).Dump(), "null");
  EXPECT_EQ(JsonValue::Number(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonEscapeTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape(std::string("\x01\n", 2)), "\\u0001\\n");
  EXPECT_EQ(JsonEscape("plain"), "plain");
}

}  // namespace
}  // namespace gva
