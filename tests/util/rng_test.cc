#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace gva {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() != b.NextUint64()) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 60);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) {
    first.push_back(a.NextUint64());
  }
  a.Reseed(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.NextUint64(), first[static_cast<size_t>(i)]);
  }
}

TEST(RngTest, UniformIntStaysInBounds) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(5);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 7000; ++i) {
    ++seen[rng.UniformInt(7)];
  }
  for (int count : seen) {
    EXPECT_GT(count, 700);  // each residue near 1000
    EXPECT_LT(count, 1300);
  }
}

TEST(RngTest, UniformInRangeInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(2024);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(314);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.05);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(271);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.Gaussian(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(8);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ShuffleHandlesTinyInputs) {
  Rng rng(8);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

}  // namespace
}  // namespace gva
