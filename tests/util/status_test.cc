#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace gva {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::InvalidArgument("window too small");
  EXPECT_EQ(s.ToString(), "InvalidArgument: window too small");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

Status FailsIfNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  GVA_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello world");
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "hello world");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) {
    return Status::InvalidArgument("non-positive");
  }
  return x * 2;
}

StatusOr<int> UsesAssignOrReturn(int x) {
  int doubled = 0;
  GVA_ASSIGN_OR_RETURN(doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  StatusOr<int> good = UsesAssignOrReturn(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 11);
  StatusOr<int> bad = UsesAssignOrReturn(0);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> v = Status::Internal("boom");
  EXPECT_DEATH({ (void)*v; }, "boom");
}

}  // namespace
}  // namespace gva
