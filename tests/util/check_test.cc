#include "util/check.h"

#include <gtest/gtest.h>

namespace gva {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  GVA_CHECK(true);
  GVA_CHECK(1 + 1 == 2) << "never evaluated";
  GVA_CHECK_EQ(3, 3);
  GVA_CHECK_NE(3, 4);
  GVA_CHECK_LT(3, 4);
  GVA_CHECK_LE(3, 3);
  GVA_CHECK_GT(4, 3);
  GVA_CHECK_GE(4, 4);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(GVA_CHECK(false), "GVA_CHECK failure");
  EXPECT_DEATH(GVA_CHECK_EQ(1, 2), "GVA_CHECK failure");
}

TEST(CheckDeathTest, StreamedContextAppears) {
  int x = -5;
  EXPECT_DEATH(GVA_CHECK(x >= 0) << "x was " << x, "x was -5");
}

TEST(CheckDeathTest, ConditionTextAppears) {
  EXPECT_DEATH(GVA_CHECK(2 + 2 == 5), "2 \\+ 2 == 5");
}

TEST(CheckTest, WorksInsideIfWithoutBraces) {
  // The switch/case expansion must not steal the else branch.
  bool reached_else = false;
  if (false)
    GVA_CHECK(true);
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

TEST(CheckTest, DcheckCompilesInBothModes) {
  GVA_DCHECK(true);
#ifdef NDEBUG
  // Compiled out: must not evaluate side effects... but stays type-checked.
  GVA_DCHECK(1 < 2);
#endif
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  auto condition = [&]() {
    ++evaluations;
    return true;
  };
  GVA_CHECK(condition());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace gva
