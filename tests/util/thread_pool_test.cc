#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace gva {
namespace {

TEST(ThreadPoolTest, ResolveThreadCountMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7u);
}

TEST(ThreadPoolTest, ResolveThreadCountClampsAbsurdRequests) {
  // A "-1" that went through an unsigned parse must not translate into an
  // attempt to spawn SIZE_MAX workers.
  EXPECT_EQ(ThreadPool::ResolveThreadCount(ThreadPool::kMaxLanes),
            ThreadPool::kMaxLanes);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(ThreadPool::kMaxLanes + 1),
            ThreadPool::kMaxLanes);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(static_cast<size_t>(-1)),
            ThreadPool::kMaxLanes);
}

TEST(ThreadPoolTest, SingleLanePoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(101);
    for (auto& h : hits) {
      h.store(0);
    }
    pool.ParallelFor(0, hits.size(),
                     [&](size_t begin, size_t end, size_t /*chunk*/) {
                       for (size_t i = begin; i < end; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ChunkIndicesAreDistinctAndBounded) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<size_t> seen;
  pool.ParallelFor(10, 90, [&](size_t begin, size_t end, size_t chunk) {
    EXPECT_LT(begin, end);
    EXPECT_LT(chunk, pool.num_threads());
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(chunk);
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](size_t, size_t, size_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, RangeSmallerThanLanesStillCovers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) {
    h.store(0);
  }
  pool.ParallelFor(0, hits.size(),
                   [&](size_t begin, size_t end, size_t /*chunk*/) {
                     for (size_t i = begin; i < end; ++i) {
                       hits[i].fetch_add(1);
                     }
                   });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ReusableAcrossRounds) {
  // The searches reuse one pool for every top-k round; sums must stay
  // correct when ParallelFor is invoked repeatedly on the same pool.
  ThreadPool pool(3);
  std::vector<uint64_t> values(1000);
  std::iota(values.begin(), values.end(), 0);
  const uint64_t expected = 1000ull * 999ull / 2;
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(0, values.size(),
                     [&](size_t begin, size_t end, size_t /*chunk*/) {
                       uint64_t local = 0;
                       for (size_t i = begin; i < end; ++i) {
                         local += values[i];
                       }
                       sum.fetch_add(local);
                     });
    ASSERT_EQ(sum.load(), expected) << "round " << round;
  }
}

TEST(ThreadPoolTest, JoinPublishesChunkWrites) {
  // ParallelFor must give the caller a happens-before edge over worker
  // writes: plain (non-atomic) writes to disjoint slices are visible after
  // the call returns. This is the access pattern of the brute-force search.
  ThreadPool pool(4);
  std::vector<double> out(4096, -1.0);
  pool.ParallelFor(0, out.size(),
                   [&](size_t begin, size_t end, size_t /*chunk*/) {
                     for (size_t i = begin; i < end; ++i) {
                       out[i] = static_cast<double>(i) * 0.5;
                     }
                   });
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<double>(i) * 0.5);
  }
}

TEST(ThreadPoolTest, ThrowingBodyRethrowsOnCallerAndPoolSurvives) {
  // Regression: a chunk body that throws used to leave ParallelFor's
  // completion state torn (workers could still reference the dead frame) and
  // an exception escaping the worker loop would std::terminate. Now the
  // first exception must surface on the calling thread after all chunks of
  // that ParallelFor have drained, with the pool fully usable afterwards.
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.ParallelFor(0, 64,
                         [&](size_t begin, size_t end, size_t /*chunk*/) {
                           ran.fetch_add(static_cast<int>(end - begin));
                           if (begin == 0) {
                             throw std::runtime_error("chunk failed");
                           }
                         }),
        std::runtime_error)
        << "threads " << threads;
    // Every chunk ran to the throw point or completion — none was stranded.
    EXPECT_EQ(ran.load(), 64) << "threads " << threads;

    // The pool is reusable: the next ParallelFor still covers the range.
    std::atomic<int> hits{0};
    pool.ParallelFor(0, 100, [&](size_t begin, size_t end, size_t /*chunk*/) {
      hits.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(hits.load(), 100) << "threads " << threads;
    // Destructor must join cleanly (exercised at scope exit).
  }
}

TEST(ThreadPoolTest, EveryChunkThrowingStillDrainsAndRethrowsOne) {
  ThreadPool pool(4);
  std::atomic<int> attempts{0};
  EXPECT_THROW(pool.ParallelFor(0, 4,
                                [&](size_t, size_t, size_t chunk) {
                                  attempts.fetch_add(1);
                                  throw std::runtime_error(
                                      "chunk " + std::to_string(chunk));
                                }),
               std::runtime_error);
  EXPECT_EQ(attempts.load(), 4);
}

TEST(ThreadPoolTest, StatsCountSubmittedExecutedAndInline) {
  if constexpr (!obs::kEnabled) {
    // Pool stats are telemetry: with GVA_OBS=OFF the counters are empty
    // no-ops and stats() reads all zeros (unlike the distance-call split,
    // which is an algorithm output and always counts).
    ThreadPool zpool(4);
    zpool.ParallelFor(0, 400, [&](size_t, size_t, size_t) {});
    EXPECT_EQ(zpool.stats().tasks_submitted, 0u);
    EXPECT_EQ(zpool.stats().tasks_inline, 0u);
    GTEST_SKIP() << "pool stats compile to no-ops with GVA_OBS=OFF";
  }
  ThreadPool pool(4);
  const ThreadPool::Stats before = pool.stats();
  EXPECT_EQ(before.tasks_submitted, 0u);
  EXPECT_EQ(before.tasks_inline, 0u);

  constexpr int kRounds = 10;
  for (int round = 0; round < kRounds; ++round) {
    pool.ParallelFor(0, 400, [&](size_t, size_t, size_t) {});
  }
  const ThreadPool::Stats after = pool.stats();
  // 4 lanes over 400 indices → 3 queued chunks + 1 inline chunk per round.
  EXPECT_EQ(after.tasks_submitted, static_cast<uint64_t>(3 * kRounds));
  EXPECT_EQ(after.tasks_inline, static_cast<uint64_t>(kRounds));
  // Every queued task ran somewhere: a worker or the stealing caller.
  EXPECT_EQ(after.tasks_executed + after.tasks_stolen, after.tasks_submitted);
  EXPECT_GE(after.max_queue_depth, 1u);
  EXPECT_LE(after.max_queue_depth, 3u);
}

TEST(ThreadPoolTest, SingleLaneStatsAreInlineOnly) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "pool stats compile to no-ops with GVA_OBS=OFF";
  }
  ThreadPool pool(1);
  pool.ParallelFor(0, 100, [&](size_t, size_t, size_t) {});
  const ThreadPool::Stats s = pool.stats();
  EXPECT_EQ(s.tasks_inline, 1u);
  EXPECT_EQ(s.tasks_submitted, 0u);
  EXPECT_EQ(s.tasks_executed, 0u);
  EXPECT_EQ(s.tasks_stolen, 0u);
  EXPECT_EQ(s.max_queue_depth, 0u);
}

TEST(ThreadPoolTest, ExportStatsAccumulatesIntoRegistry) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "pool stats compile to no-ops with GVA_OBS=OFF";
  }
  obs::MetricsRegistry registry;
  {
    ThreadPool pool(2);
    pool.ParallelFor(0, 64, [&](size_t, size_t, size_t) {});
    pool.ExportStats(registry, "pool");
  }
  EXPECT_EQ(registry.counter("pool.tasks.submitted").value(), 1u);
  EXPECT_EQ(registry.counter("pool.tasks.inline").value(), 1u);
  EXPECT_EQ(registry.counter("pool.tasks.executed").value() +
                registry.counter("pool.tasks.stolen").value(),
            1u);
}

}  // namespace
}  // namespace gva
