#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace gva {
namespace {

TEST(ThreadPoolTest, ResolveThreadCountMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7u);
}

TEST(ThreadPoolTest, ResolveThreadCountClampsAbsurdRequests) {
  // A "-1" that went through an unsigned parse must not translate into an
  // attempt to spawn SIZE_MAX workers.
  EXPECT_EQ(ThreadPool::ResolveThreadCount(ThreadPool::kMaxLanes),
            ThreadPool::kMaxLanes);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(ThreadPool::kMaxLanes + 1),
            ThreadPool::kMaxLanes);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(static_cast<size_t>(-1)),
            ThreadPool::kMaxLanes);
}

TEST(ThreadPoolTest, SingleLanePoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(101);
    for (auto& h : hits) {
      h.store(0);
    }
    pool.ParallelFor(0, hits.size(),
                     [&](size_t begin, size_t end, size_t /*chunk*/) {
                       for (size_t i = begin; i < end; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ChunkIndicesAreDistinctAndBounded) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<size_t> seen;
  pool.ParallelFor(10, 90, [&](size_t begin, size_t end, size_t chunk) {
    EXPECT_LT(begin, end);
    EXPECT_LT(chunk, pool.num_threads());
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(chunk);
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](size_t, size_t, size_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, RangeSmallerThanLanesStillCovers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) {
    h.store(0);
  }
  pool.ParallelFor(0, hits.size(),
                   [&](size_t begin, size_t end, size_t /*chunk*/) {
                     for (size_t i = begin; i < end; ++i) {
                       hits[i].fetch_add(1);
                     }
                   });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ReusableAcrossRounds) {
  // The searches reuse one pool for every top-k round; sums must stay
  // correct when ParallelFor is invoked repeatedly on the same pool.
  ThreadPool pool(3);
  std::vector<uint64_t> values(1000);
  std::iota(values.begin(), values.end(), 0);
  const uint64_t expected = 1000ull * 999ull / 2;
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(0, values.size(),
                     [&](size_t begin, size_t end, size_t /*chunk*/) {
                       uint64_t local = 0;
                       for (size_t i = begin; i < end; ++i) {
                         local += values[i];
                       }
                       sum.fetch_add(local);
                     });
    ASSERT_EQ(sum.load(), expected) << "round " << round;
  }
}

TEST(ThreadPoolTest, JoinPublishesChunkWrites) {
  // ParallelFor must give the caller a happens-before edge over worker
  // writes: plain (non-atomic) writes to disjoint slices are visible after
  // the call returns. This is the access pattern of the brute-force search.
  ThreadPool pool(4);
  std::vector<double> out(4096, -1.0);
  pool.ParallelFor(0, out.size(),
                   [&](size_t begin, size_t end, size_t /*chunk*/) {
                     for (size_t i = begin; i < end; ++i) {
                       out[i] = static_cast<double>(i) * 0.5;
                     }
                   });
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<double>(i) * 0.5);
  }
}

}  // namespace
}  // namespace gva
