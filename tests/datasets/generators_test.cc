#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "datasets/ecg.h"
#include "datasets/power_demand.h"
#include "datasets/respiration.h"
#include "datasets/simple.h"
#include "datasets/tek.h"
#include "datasets/trajectory.h"
#include "datasets/video.h"
#include "timeseries/stats.h"

namespace gva {
namespace {

void CheckLabeledSeries(const LabeledSeries& data, size_t min_length) {
  EXPECT_GE(data.series.size(), min_length) << data.name;
  EXPECT_FALSE(data.name.empty());
  EXPECT_TRUE(data.recommended.Validate().ok()) << data.name;
  for (const Interval& a : data.anomalies) {
    EXPECT_GT(a.length(), 0u);
    EXPECT_LE(a.end, data.series.size()) << data.name;
  }
  for (size_t i = 1; i < data.anomalies.size(); ++i) {
    EXPECT_LE(data.anomalies[i - 1].end, data.anomalies[i].start)
        << "anomalies must be sorted and disjoint";
  }
  // Values are finite.
  for (double v : data.series.values()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(EcgTest, StructureAndDeterminism) {
  EcgOptions opts;
  LabeledSeries a = MakeEcg(opts);
  LabeledSeries b = MakeEcg(opts);
  CheckLabeledSeries(a, opts.num_beats * opts.beat_length * 9 / 10);
  EXPECT_EQ(a.series.values(), b.series.values()) << "seeded determinism";
  EXPECT_EQ(a.anomalies.size(), 1u);
}

TEST(EcgTest, AnomalousBeatDiffersFromNormal) {
  EcgOptions opts;
  opts.length_jitter = 0.0;
  opts.noise = 0.0;
  opts.anomalous_beats = {2};
  LabeledSeries data = MakeEcg(opts);
  // Beat 1 (normal) vs beat 2 (anomalous) must differ substantially.
  auto beat1 = data.series.Subsequence(opts.beat_length, opts.beat_length);
  auto beat2 =
      data.series.Subsequence(2 * opts.beat_length, opts.beat_length);
  double diff = 0.0;
  for (size_t i = 0; i < opts.beat_length; ++i) {
    diff += std::abs(beat1[i] - beat2[i]);
  }
  EXPECT_GT(diff / static_cast<double>(opts.beat_length), 0.05);
  // Two normal beats are identical without jitter/noise.
  auto beat3 = data.series.Subsequence(3 * opts.beat_length,
                                       opts.beat_length);
  for (size_t i = 0; i < opts.beat_length; ++i) {
    EXPECT_NEAR(beat1[i], beat3[i], 1e-12);
  }
}

TEST(PowerDemandTest, WeekStructure) {
  PowerDemandOptions opts;
  LabeledSeries data = MakePowerDemand(opts);
  CheckLabeledSeries(data, opts.weeks * 7 * opts.samples_per_day);
  EXPECT_EQ(data.series.size(), opts.weeks * 7 * opts.samples_per_day);
  EXPECT_EQ(data.anomalies.size(), opts.holiday_days.size());

  // A weekday daytime sample is clearly above a weekend daytime sample.
  const size_t noon = opts.samples_per_day / 2;
  const double weekday_noon = data.series[noon];                    // Monday
  const double weekend_noon = data.series[5 * opts.samples_per_day + noon];
  EXPECT_GT(weekday_noon, weekend_noon + 0.3);
}

TEST(PowerDemandTest, HolidayLooksLikeWeekend) {
  PowerDemandOptions opts;
  opts.holiday_days = {121};  // a Wednesday
  LabeledSeries data = MakePowerDemand(opts);
  const size_t noon = opts.samples_per_day / 2;
  const double holiday_noon =
      data.series[121 * opts.samples_per_day + noon];
  const double weekend_noon =
      data.series[5 * opts.samples_per_day + noon];
  EXPECT_NEAR(holiday_noon, weekend_noon, 0.15);
}

TEST(VideoTest, AnomalousCycleAnnotated) {
  VideoOptions opts;
  LabeledSeries data = MakeVideo(opts);
  CheckLabeledSeries(data, opts.num_cycles * opts.cycle_length * 9 / 10);
  ASSERT_EQ(data.anomalies.size(), opts.anomalous_cycles.size());
  // The anomalous interval is in the interior (cycle 14 of 25).
  EXPECT_GT(data.anomalies[0].start, data.series.size() / 3);
  EXPECT_LT(data.anomalies[0].end, data.series.size());
}

TEST(TekTest, GlitchIsLocalizedDip) {
  TekOptions opts;
  opts.noise = 0.0;
  LabeledSeries data = MakeTek(opts);
  CheckLabeledSeries(data, opts.num_cycles * opts.cycle_length);
  ASSERT_EQ(data.anomalies.size(), 1u);
  // The glitch cycle's plateau dips well below every normal cycle's plateau
  // (compare the mid-cycle plateau regions; the de-energize undershoot at
  // the cycle end is shared by all cycles).
  const Interval& glitch = data.anomalies[0];
  const size_t plateau_off = opts.cycle_length * 35 / 100;
  const size_t plateau_len = opts.cycle_length * 30 / 100;
  const double glitch_plateau_min =
      Min(data.series.Subsequence(glitch.start + plateau_off, plateau_len));
  const double normal_plateau_min =
      Min(data.series.Subsequence(plateau_off, plateau_len));
  EXPECT_LT(glitch_plateau_min, normal_plateau_min - 0.3);
}

TEST(RespirationTest, AnomalyRegimeHasSmallerAmplitude) {
  RespirationOptions opts;
  opts.noise = 0.0;
  LabeledSeries data = MakeRespiration(opts);
  CheckLabeledSeries(data, opts.length);
  ASSERT_EQ(data.anomalies.size(), 1u);
  const Interval& a = data.anomalies[0];
  const double anomaly_amp =
      Max(data.series.Subsequence(a.start, a.length()));
  const double normal_amp = Max(data.series.Subsequence(0, 500));
  EXPECT_LT(anomaly_amp, normal_amp * 0.7);
}

TEST(TrajectoryTest, StructureAndGroundTruth) {
  TrajectoryOptions opts;
  TrajectoryData data = MakeTrajectory(opts);
  CheckLabeledSeries(data.labeled, opts.num_trips * opts.samples_per_trip);
  EXPECT_EQ(data.points.size(), data.labeled.series.size());
  EXPECT_EQ(data.labeled.anomalies.size(), 2u);  // detour + fix loss
  // Hilbert indices stay within the order-8 curve.
  const double max_index = 256.0 * 256.0 - 1.0;
  for (double v : data.labeled.series.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, max_index);
  }
}

TEST(TrajectoryTest, DetourVisitsOtherwiseUnvisitedSpace) {
  TrajectoryOptions opts;
  TrajectoryData data = MakeTrajectory(opts);
  const Interval detour = data.labeled.anomalies[0];
  // Points in the detour's excursion reach y > 0.85; no regular trip does.
  double max_y_outside = 0.0;
  double max_y_inside = 0.0;
  for (size_t i = 0; i < data.points.size(); ++i) {
    if (detour.Contains(i)) {
      max_y_inside = std::max(max_y_inside, data.points[i].y);
    } else if (!data.labeled.anomalies[1].Contains(i)) {
      max_y_outside = std::max(max_y_outside, data.points[i].y);
    }
  }
  EXPECT_GT(max_y_inside, 0.88);
  EXPECT_LT(max_y_outside, 0.85);
}

TEST(SimpleTest, SineWithAnomalyIsFlatInAnomaly) {
  LabeledSeries data = MakeSineWithAnomaly(1000, 50.0, 0.01, 500, 60, 1);
  CheckLabeledSeries(data, 1000);
  const double anomaly_amp = Max(data.series.Subsequence(505, 50));
  EXPECT_LT(anomaly_amp, 0.2);
  const double normal_amp = Max(data.series.Subsequence(0, 100));
  EXPECT_GT(normal_amp, 0.8);
}

TEST(SimpleTest, GeneratorsAreDeterministic) {
  EXPECT_EQ(MakeSine(100, 10.0, 0.5, 42), MakeSine(100, 10.0, 0.5, 42));
  EXPECT_EQ(MakeRandomWalk(100, 1.0, 42), MakeRandomWalk(100, 1.0, 42));
  EXPECT_EQ(MakeNoise(100, 1.0, 42), MakeNoise(100, 1.0, 42));
  EXPECT_NE(MakeNoise(100, 1.0, 42), MakeNoise(100, 1.0, 43));
}

}  // namespace
}  // namespace gva
