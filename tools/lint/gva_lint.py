#!/usr/bin/env python3
"""gva_lint: project-specific static checks clang-tidy cannot express.

The repo's correctness story rests on invariants that are conventions, not
types: scoring paths must be deterministic, reductions must not depend on
hash-table iteration order, observability spans follow a naming scheme, and
library headers must not abort through unprefixed macros. This lint makes
those conventions machine-checked. Run as:

    python3 tools/lint/gva_lint.py [--root REPO_ROOT] [paths...]

With no paths it checks the default surface (src/ and examples/). Exit
code 0 means no
findings; 1 means findings were printed, one per line, in
`path:line: [rule] message` form.

Suppressions: append `// gva-lint: allow(<rule>)` to the offending line.
Every suppression is a documented exception — the comment survives review.

Rules
-----
determinism-rng      rand()/std::rand/srand/time(nullptr)/system_clock/
                     steady_clock/high_resolution_clock/random_device in
                     deterministic subsystems
                     (src/{core,discord,grammar,sax,ensemble,timeseries}).
                     Scores must be replayable; wall clocks and global RNG
                     state are not — a clock read that feeds an eviction or
                     report decision makes streaming replay diverge. Use
                     util/rng.h (seeded), count samples instead of seconds,
                     or suppress with a comment proving the value only
                     feeds observability (timings exported via obs).
unordered-iteration  range-for over a std::unordered_{map,set} in the same
                     deterministic subsystems. Iteration order is
                     implementation-defined; anything it feeds (sums, best-
                     candidate reductions, output ordering) silently loses
                     the bit-identical-results contract. Iterate a sorted
                     copy or an index vector instead.
status-swallow       an `if (!x.ok())` branch (src/ and examples/) whose
                     body discards the error — bare continue/break/return —
                     without examining it (.code()/.status()/print/record).
                     Swallowing a Status turns real failures into silent
                     no-ops; the streaming example once treated every
                     Report() error as "not enough data yet" this way.
                     Branch on status().code() for the benign case and
                     fail loudly otherwise.
span-naming          GVA_OBS_SPAN names must be dotted lowercase
                     "subsystem.verb" (e.g. "grammar.sequitur.induce") so
                     trace files and stage metrics aggregate predictably.
check-in-header      bare CHECK(/DCHECK( (no GVA_ prefix) in headers under
                     src/. Library headers ship to users; only the
                     namespaced GVA_CHECK family may abort.
include-self-first   a .cc file's first #include must be its own header,
                     proving the header is self-contained.
include-bits         #include <bits/...> is libstdc++ internals; spell the
                     real header.
simd-intrinsics      vector-intrinsic headers (immintrin.h, arm_neon.h, ...)
                     or identifiers (_mm*, v*q_f64, __m256d, float64x2_t)
                     outside src/backend/. ISA-specific code must live
                     behind the dispatch table (backend::ActiveBackend());
                     an intrinsic inlined elsewhere skips the runtime
                     capability gate (SIGILL on older hardware), dodges the
                     per-file -mavx2 isolation, and is invisible to the
                     backend differential suite.
signal-safety        allocation (malloc/new/std::string/containers), stdio
                     (printf/fopen/iostream), or locks (std::mutex,
                     lock_guard, condition_variable) inside a function whose
                     name contains "SignalHandler". Such functions run in
                     async-signal context (the flight recorder's fatal-signal
                     dump, DESIGN.md §12): only async-signal-safe syscalls
                     (write/open/close/raise) and hand-rolled formatting are
                     legal — a malloc inside a handler that interrupted
                     malloc deadlocks, and iostream locks are not
                     reentrant.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

# Subsystems whose outputs must be bit-reproducible across runs, thread
# counts, and platforms (the determinism contract in DESIGN.md §5b).
DETERMINISTIC_DIRS = (
    "src/core",
    "src/discord",
    "src/grammar",
    "src/sax",
    "src/ensemble",
    "src/timeseries",
)

ALLOW_RE = re.compile(r"//\s*gva-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
LINE_COMMENT_RE = re.compile(r"//.*$")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed_rules(line: str) -> set[str]:
    m = ALLOW_RE.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def strip_strings_and_comments(line: str) -> str:
    """Removes string literal contents and // comments so pattern rules do
    not fire on prose. Char literals and raw strings are approximated —
    good enough for the patterns checked here."""
    out = []
    i = 0
    in_str = None
    while i < len(line):
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
                out.append(c)
            i += 1
            continue
        if c in ("\"", "'"):
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and line[i : i + 2] == "//":
            break
        out.append(c)
        i += 1
    return "".join(out)


# --- rule: determinism-rng --------------------------------------------------

RNG_PATTERNS = [
    (re.compile(r"(?<![\w.:])(?:std::)?rand\s*\(\s*\)"), "rand()"),
    (re.compile(r"(?<![\w.:])(?:std::)?srand\s*\("), "srand()"),
    (re.compile(r"(?<![\w.:])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "time(nullptr)"),
    (re.compile(r"std::chrono::system_clock"), "std::chrono::system_clock"),
    # Monotonic clocks are fine for *observability* (suppress with a comment
    # saying so) but not for logic: anything time-driven — eviction, report
    # cadence, retry — replays differently, and the streaming engine's
    # contract is that replaying a stream reproduces the batch result
    # bit-for-bit. Count samples, not seconds.
    (re.compile(r"std::chrono::steady_clock"), "std::chrono::steady_clock"),
    (re.compile(r"std::chrono::high_resolution_clock"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"(?<![\w.:])(?:std::)?random_device"), "std::random_device"),
]


def check_determinism_rng(path: str, rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith(DETERMINISTIC_DIRS):
        return []
    findings = []
    for i, raw in enumerate(lines, 1):
        if "determinism-rng" in allowed_rules(raw):
            continue
        code = strip_strings_and_comments(raw)
        for pattern, label in RNG_PATTERNS:
            if pattern.search(code):
                findings.append(Finding(
                    rel, i, "determinism-rng",
                    f"{label} in a deterministic subsystem; scoring paths "
                    "must be replayable — use util/rng.h (seeded) or take "
                    "the value as a parameter"))
    return findings


# --- rule: unordered-iteration ----------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"(?:std::)?unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*>\s*"
    r"(&?\s*)(\w+)\s*[;={(,)]")
RANGE_FOR_RE = re.compile(r"for\s*\(.*?:\s*(\*?\s*[\w.\->]+?)\s*\)")


def check_unordered_iteration(path: str, rel: str,
                              lines: list[str]) -> list[Finding]:
    if not rel.startswith(DETERMINISTIC_DIRS):
        return []
    # Pass 1: names declared (anywhere in the file) with an unordered type.
    unordered_names: set[str] = set()
    for raw in lines:
        code = strip_strings_and_comments(raw)
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(2))
    if not unordered_names:
        return []
    # Pass 2: range-for statements whose range expression resolves to one of
    # those names (directly, or via ->name / .name member access).
    findings = []
    for i, raw in enumerate(lines, 1):
        if "unordered-iteration" in allowed_rules(raw):
            continue
        code = strip_strings_and_comments(raw)
        for m in RANGE_FOR_RE.finditer(code):
            expr = m.group(1).lstrip("*").strip()
            terminal = re.split(r"\.|->", expr)[-1]
            if terminal in unordered_names:
                findings.append(Finding(
                    rel, i, "unordered-iteration",
                    f"range-for over unordered container '{terminal}': "
                    "iteration order is implementation-defined and breaks "
                    "the bit-identical-results contract — iterate a sorted "
                    "copy, or suppress with a comment proving order cannot "
                    "reach a score/reduction/output"))
    return findings


# --- rule: status-swallow -----------------------------------------------------

STATUS_IF_RE = re.compile(r"if\s*\(\s*!\s*[\w.>-]+?(?:\.|->)ok\s*\(\s*\)\s*\)")
DISCARD_STMT_RE = re.compile(
    r"^\s*(?:continue|break|return(?:\s+(?:0|false|true|nullptr|\{\s*\}))?)"
    r"\s*;", re.MULTILINE)
# Any of these in the branch body means the error was examined, printed,
# recorded, or propagated rather than dropped. (A `return <expr>;` that
# isn't in the trivial-discard set above never fires the rule at all, so
# propagating returns need no entry here.)
EXAMINED_RE = re.compile(
    r"code\s*\(|status\s*\(|ToString|printf|fprintf|cerr|cout|abort|throw|"
    r"[Ll]og|[Ee]rror")


def check_status_swallow(path: str, rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith(("src/", "examples/")):
        return []
    findings = []
    for i, raw in enumerate(lines, 1):
        code = strip_strings_and_comments(raw)
        m = STATUS_IF_RE.search(code)
        if not m:
            continue
        # Collect the branch body: the remainder of this line, plus following
        # lines until the opening brace balances (braceless ifs take the next
        # line). Good enough for the formatted code this repo contains.
        body_lines = [code[m.end():]]
        depth = body_lines[0].count("{") - body_lines[0].count("}")
        end = i  # 0-based index just past the last body line consumed
        if "{" not in body_lines[0]:
            if not body_lines[0].strip() and end < len(lines):
                body_lines.append(strip_strings_and_comments(lines[end]))
                end += 1
        else:
            while depth > 0 and end < len(lines):
                nxt = strip_strings_and_comments(lines[end])
                end += 1
                body_lines.append(nxt)
                depth += nxt.count("{") - nxt.count("}")
        if any("status-swallow" in allowed_rules(lines[k])
               for k in range(i - 1, min(end, len(lines)))):
            continue
        body = "\n".join(body_lines)
        if EXAMINED_RE.search(body):
            continue
        if DISCARD_STMT_RE.search(body):
            findings.append(Finding(
                rel, i, "status-swallow",
                "error Status discarded without being examined: branch on "
                "status().code() for the benign case (e.g. "
                "kFailedPrecondition = not enough data yet) and print/"
                "propagate everything else — or suppress with a comment "
                "saying why every failure here is ignorable"))
    return findings


# --- rule: span-naming --------------------------------------------------------

SPAN_CALL_RE = re.compile(r"GVA_OBS_SPAN\s*\(\s*(\"([^\"]*)\")?")
SPAN_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")


def check_span_naming(path: str, rel: str, lines: list[str]) -> list[Finding]:
    if "obs/trace.h" in rel:  # the macro's own definition site
        return []
    findings = []
    for i, raw in enumerate(lines, 1):
        if "span-naming" in allowed_rules(raw):
            continue
        if re.match(r"\s*#\s*define\b", raw):  # macro definition site
            continue
        for m in SPAN_CALL_RE.finditer(raw):
            if m.group(1) is None:
                findings.append(Finding(
                    rel, i, "span-naming",
                    "GVA_OBS_SPAN name must be a string literal (trace "
                    "events keep the pointer, not a copy)"))
                continue
            name = m.group(2)
            if not SPAN_NAME_RE.match(name):
                findings.append(Finding(
                    rel, i, "span-naming",
                    f'span name "{name}" must be dotted lowercase '
                    '"subsystem.verb" (e.g. "grammar.sequitur.induce")'))
    return findings


# --- rule: check-in-header ----------------------------------------------------

BARE_CHECK_RE = re.compile(
    r"(?<![\w])(?<!GVA_)D?CHECK(?:_(?:EQ|NE|LT|LE|GT|GE|OK))?\s*\(")


def check_check_in_header(path: str, rel: str,
                          lines: list[str]) -> list[Finding]:
    if not (rel.startswith("src/") and rel.endswith(".h")):
        return []
    findings = []
    for i, raw in enumerate(lines, 1):
        if "check-in-header" in allowed_rules(raw):
            continue
        code = strip_strings_and_comments(raw)
        if BARE_CHECK_RE.search(code):
            findings.append(Finding(
                rel, i, "check-in-header",
                "bare CHECK()/DCHECK() in a shipped header; only the "
                "GVA_CHECK family (util/check.h) may abort from library "
                "code"))
    return findings


# --- rule: include-self-first -------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*(["<])([^">]+)[">]')


def check_include_self_first(path: str, rel: str,
                             lines: list[str]) -> list[Finding]:
    if not (rel.startswith("src/") and rel.endswith(".cc")):
        return []
    own_header = rel[len("src/"):-len(".cc")] + ".h"
    if not os.path.exists(os.path.join(os.path.dirname(path),
                                       os.path.basename(own_header))):
        return []  # no paired header (e.g. a main file): nothing to check
    for i, raw in enumerate(lines, 1):
        m = INCLUDE_RE.match(raw)
        if not m:
            continue
        if "include-self-first" in allowed_rules(raw):
            return []
        if m.group(1) == '"' and m.group(2) == own_header:
            return []
        return [Finding(
            rel, i, "include-self-first",
            f'first #include must be the file\'s own header "{own_header}" '
            "(proves the header is self-contained)")]
    return []


# --- rule: include-bits -------------------------------------------------------

BITS_RE = re.compile(r'#\s*include\s*<bits/')


def check_include_bits(path: str, rel: str, lines: list[str]) -> list[Finding]:
    findings = []
    for i, raw in enumerate(lines, 1):
        if "include-bits" in allowed_rules(raw):
            continue
        if BITS_RE.search(raw):
            findings.append(Finding(
                rel, i, "include-bits",
                "<bits/...> is libstdc++ internals; include the standard "
                "header instead"))
    return findings


# --- rule: simd-intrinsics ----------------------------------------------------

# The only tree allowed to contain ISA-specific code: its TUs get per-file
# ISA flags in src/CMakeLists.txt and its tables are gated by runtime
# cpuid/hwcap checks before the registry hands them out.
SIMD_ALLOWED_DIRS = ("src/backend/",)

SIMD_PATTERNS = [
    (re.compile(
        r"#\s*include\s*[<\"](?:immintrin|x86intrin|emmintrin|smmintrin|"
        r"avxintrin|arm_neon)\.h[>\"]"),
     "vector-intrinsics header"),
    (re.compile(r"(?<![\w])_mm\d*_\w+"), "x86 vector intrinsic"),
    (re.compile(r"(?<![\w])__m(?:512|256|128)[di]?\b"), "x86 vector type"),
    (re.compile(r"(?<![\w])v\w+q_f64\b"), "NEON vector intrinsic"),
    (re.compile(r"(?<![\w])float64x[12]_t\b"), "NEON vector type"),
]


def check_simd_intrinsics(path: str, rel: str,
                          lines: list[str]) -> list[Finding]:
    if not rel.startswith(("src/", "examples/")):
        return []
    if rel.startswith(SIMD_ALLOWED_DIRS):
        return []
    findings = []
    for i, raw in enumerate(lines, 1):
        if "simd-intrinsics" in allowed_rules(raw):
            continue
        code = strip_strings_and_comments(raw)
        for pattern, label in SIMD_PATTERNS:
            if pattern.search(code):
                findings.append(Finding(
                    rel, i, "simd-intrinsics",
                    f"{label} outside src/backend/: ISA-specific code must "
                    "go through the dispatch table (backend::ActiveBackend()"
                    ") — inlined intrinsics skip the runtime capability "
                    "gate and the per-file ISA compile flags"))
                break  # one finding per line is enough
    return findings


# --- rule: signal-safety ------------------------------------------------------

# A definition (not a call) of a function whose name contains
# "SignalHandler": a return type token, then the name, then an argument
# list. Calls (`obs::InstallFlightSignalHandler();`) have no type token
# before the name and do not match; whether the match is a definition or
# a mere declaration is decided later by which of `{` / `;` comes first.
SIGNAL_DEF_RE = re.compile(
    r"^\s*(?:static\s+|inline\s+|extern\s+)*[\w:]+(?:<[^>]*>)?[\s*&]+"
    r"((?:\w+::)*\w*SignalHandler\w*)\s*\(")

SIGNAL_UNSAFE_PATTERNS = [
    (re.compile(r"(?<![\w.:])(?:std::)?(?:malloc|calloc|realloc|free)\s*\("),
     "heap allocation"),
    (re.compile(r"(?<![\w:])new\s+[\w:(<]"), "operator new"),
    (re.compile(r"(?<![\w:])delete\b"), "operator delete"),
    (re.compile(
        r"std::(?:string|vector|deque|list|map|set|unordered_map|"
        r"unordered_set|basic_string|i?o?stringstream|function)\b"),
     "allocating std type"),
    (re.compile(
        r"(?<![\w.:])(?:std::)?(?:printf|fprintf|sprintf|snprintf|"
        r"vsnprintf|puts|fputs|putchar|fwrite|fread|fopen|fclose|"
        r"fflush)\s*\("),
     "stdio call"),
    (re.compile(r"std::(?:cout|cerr|clog|endl)\b"), "iostream"),
    (re.compile(
        r"std::(?:recursive_mutex|shared_mutex|mutex|lock_guard|"
        r"unique_lock|scoped_lock|shared_lock|condition_variable)\b"),
     "lock primitive"),
]


def check_signal_safety(path: str, rel: str,
                        lines: list[str]) -> list[Finding]:
    if not rel.startswith(("src/", "examples/")):
        return []
    findings = []
    name = None  # handler whose signature or body we are inside
    in_body = False  # False while the signature awaits its `{` or `;`
    depth = 0
    for i, raw in enumerate(lines, 1):
        code = strip_strings_and_comments(raw)
        rest = code
        if name is None:
            m = SIGNAL_DEF_RE.search(code)
            if not m:
                continue
            name = m.group(1)
            in_body = False
            rest = code[m.end():]
        if not in_body:
            brace = rest.find("{")
            semi = rest.find(";")
            if semi != -1 and (brace == -1 or semi < brace):
                name = None  # declaration only, no body to check
                continue
            if brace == -1:
                continue  # signature spans lines; keep waiting
            in_body = True
            depth = 0
            rest = rest[brace:]
        depth += rest.count("{") - rest.count("}")
        if "signal-safety" not in allowed_rules(raw):
            for pattern, label in SIGNAL_UNSAFE_PATTERNS:
                if pattern.search(code):
                    findings.append(Finding(
                        rel, i, "signal-safety",
                        f"{label} inside signal handler {name}(): the "
                        "fatal-signal flight dump (DESIGN.md §12) runs in "
                        "async-signal context, where only write/open/close/"
                        "raise and hand-rolled formatting are legal — an "
                        "allocation that interrupted malloc deadlocks, and "
                        "stdio/iostream locks are not reentrant"))
                    break  # one finding per line is enough
        if depth <= 0:
            name = None
    return findings


# --- driver -------------------------------------------------------------------

ALL_RULES = {
    "determinism-rng": check_determinism_rng,
    "unordered-iteration": check_unordered_iteration,
    "status-swallow": check_status_swallow,
    "span-naming": check_span_naming,
    "check-in-header": check_check_in_header,
    "include-self-first": check_include_self_first,
    "include-bits": check_include_bits,
    "simd-intrinsics": check_simd_intrinsics,
    "signal-safety": check_signal_safety,
}

SOURCE_EXTENSIONS = (".cc", ".cpp", ".h", ".hpp")


def lint_file(path: str, rel: str) -> list[Finding]:
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except (OSError, UnicodeDecodeError) as e:
        return [Finding(rel, 0, "io", f"unreadable: {e}")]
    rel = rel.replace(os.sep, "/")
    findings = []
    for checker in ALL_RULES.values():
        findings.extend(checker(path, rel, lines))
    return findings


def collect_files(root: str, paths: list[str]) -> list[tuple[str, str]]:
    out = []
    for p in paths:
        absolute = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(absolute):
            out.append((absolute, os.path.relpath(absolute, root)))
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    out.append((full, os.path.relpath(full, root)))
    return out


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root findings are reported relative to "
                             "(default: this script's ../../)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint "
                             "(default: src examples)")
    args = parser.parse_args(argv)

    root = args.root or os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    paths = args.paths or ["src", "examples"]

    findings: list[Finding] = []
    files = collect_files(root, paths)
    for full, rel in files:
        findings.extend(lint_file(full, rel))

    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(f)
    if findings:
        print(f"gva_lint: {len(findings)} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"gva_lint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
