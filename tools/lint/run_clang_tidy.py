#!/usr/bin/env python3
"""Runs clang-tidy (config: the repo's .clang-tidy) over the project sources
listed in a CMake compilation database, in parallel.

    python3 tools/lint/run_clang_tidy.py -p build [--jobs N] [paths...]

Only translation units under the given paths (default: src/ examples/
bench/) are checked; system and third-party headers are excluded by the
.clang-tidy HeaderFilterRegex. Exit codes:

    0   clang-tidy ran and found nothing
    1   findings (or tool errors) — output is printed per file
    77  clang-tidy is not installed; the ctest registration maps this to
        SKIPPED so environments without LLVM (like the minimal CI image for
        the sanitizer jobs) still run the rest of the lint label

Why 77: that is the automake/ctest skip convention, and the lint ctest
entry sets SKIP_RETURN_CODE 77. The GitHub Actions lint job installs
clang-tidy explicitly, so a silent skip cannot mask findings there.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

SKIP_EXIT_CODE = 77
DEFAULT_SCOPES = ("src", "examples", "bench")


def find_clang_tidy() -> str | None:
    for candidate in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                      "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        if shutil.which(candidate):
            return candidate
    return None


def project_sources(build_dir: str, repo_root: str,
                    scopes: tuple[str, ...]) -> list[str]:
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        print(f"run_clang_tidy: no compilation database at {db_path}; "
              "configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON",
              file=sys.stderr)
        sys.exit(1)
    with open(db_path, encoding="utf-8") as f:
        database = json.load(f)
    scope_prefixes = tuple(
        os.path.join(os.path.abspath(repo_root), s) + os.sep for s in scopes)
    files = sorted({
        entry["file"] for entry in database
        if os.path.abspath(entry["file"]).startswith(scope_prefixes)
    })
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-p", "--build-dir", required=True,
                        help="build directory containing compile_commands.json")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--skip-ok", action="store_true",
                        help="exit 0 instead of 77 when clang-tidy is "
                             "missing (for the `lint` build target, which "
                             "cannot express a skip)")
    parser.add_argument("paths", nargs="*",
                        help=f"source scopes (default: {' '.join(DEFAULT_SCOPES)})")
    args = parser.parse_args()

    tidy = find_clang_tidy()
    if tidy is None:
        print("run_clang_tidy: clang-tidy not found on PATH; skipping "
              "(install LLVM to enforce locally — CI enforces this job)",
              file=sys.stderr)
        return 0 if args.skip_ok else SKIP_EXIT_CODE

    repo_root = os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    scopes = tuple(args.paths) if args.paths else DEFAULT_SCOPES
    files = project_sources(args.build_dir, repo_root, scopes)
    if not files:
        print("run_clang_tidy: no project sources matched the compilation "
              "database", file=sys.stderr)
        return 1

    def run_one(path: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [tidy, "-p", args.build_dir, "--quiet", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout + proc.stderr

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for path, code, output in pool.map(run_one, files):
            rel = os.path.relpath(path, repo_root)
            if code != 0:
                failures += 1
                print(f"== {rel} ==\n{output}")
    total = len(files)
    if failures:
        print(f"run_clang_tidy: {failures}/{total} files with findings",
              file=sys.stderr)
        return 1
    print(f"run_clang_tidy: clean ({total} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
