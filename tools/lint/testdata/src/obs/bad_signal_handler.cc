// Fixture: allocation, stdio, and locks inside a function whose name
// contains "SignalHandler" must be flagged — the flight recorder's
// fatal-signal dump (src/obs/recorder.cc) runs in async-signal context
// where only write/open/close/raise are legal. Expected findings: 4.

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace gva {

void CrashSignalHandler(int signum) {
  std::string path = "gva_flight.json";  // finding: allocating std type
  std::printf("caught %d\n", signum);    // finding: stdio call
  void* scratch = std::malloc(64);       // finding: heap allocation
  std::mutex dump_mu;                    // finding: lock primitive
  (void)scratch;  // never freed: the process is about to die anyway
  (void)path;
  (void)dump_mu;
}

void SafeSignalHandler(int signum) {
  // write(2) with a preformatted buffer is the only legal output path.
  const char message[] = "fatal signal\n";
  long n = 0;
  for (const char c : message) {
    n += c;  // stand-in for a hand-rolled ::write loop
  }
  (void)signum;
  (void)n;
}

void SuppressedSignalHandler(int signum) {
  // Documented: this handler is only installed in debugging builds that
  // accept the deadlock risk in exchange for a readable crash banner.
  std::printf("signal %d\n", signum);  // gva-lint: allow(signal-safety)
}

// Not a handler: the name does not contain "SignalHandler", so stdio and
// allocation here are out of this rule's scope.
void FormatCrashBanner() {
  std::string banner = "crash";
  std::printf("%s\n", banner.c_str());
}

// Declaration only — no body to scan.
void ForwardDeclaredSignalHandler(int signum);

}  // namespace gva
