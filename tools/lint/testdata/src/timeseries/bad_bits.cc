// Fixture: libstdc++ internal include. Expected include-bits findings: 1.
#include <bits/stdc++.h>

namespace gva {
int BitsFixture() { return 0; }
}  // namespace gva
