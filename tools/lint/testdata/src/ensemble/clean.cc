// Fixture: a file that follows every convention. Expected findings: 0.
#include "ensemble/clean.h"

#include <map>
#include <vector>

#define GVA_OBS_SPAN(name) (void)(name)

namespace gva {

double CleanScore(std::size_t n) {
  GVA_OBS_SPAN("ensemble.clean_score");
  // Ordered containers iterate deterministically; no finding.
  std::map<int, double> scores;
  std::vector<double> values(n, 1.0);
  double total = 0.0;
  for (const auto& [k, v] : scores) {
    total += v;
  }
  for (double v : values) {
    total += v;
  }
  return total;
}

}  // namespace gva
