// Paired header for the clean fixture: no rule should fire anywhere in the
// clean pair.
#ifndef GVA_LINT_TESTDATA_CLEAN_H_
#define GVA_LINT_TESTDATA_CLEAN_H_

#include <cstddef>

namespace gva {
double CleanScore(std::size_t n);
}  // namespace gva

#endif  // GVA_LINT_TESTDATA_CLEAN_H_
