// Fixture: the first #include is not the file's own header. Expected
// include-self-first findings: 1 (reported at the first include line).
#include <vector>

#include "sax/bad_include_order.h"

namespace gva {
int IncludeOrderFixture() { return static_cast<int>(std::vector<int>{}.size()); }
}  // namespace gva
