// Paired header for the include-self-first fixture.
#ifndef GVA_LINT_TESTDATA_BAD_INCLUDE_ORDER_H_
#define GVA_LINT_TESTDATA_BAD_INCLUDE_ORDER_H_

namespace gva {
int IncludeOrderFixture();
}  // namespace gva

#endif  // GVA_LINT_TESTDATA_BAD_INCLUDE_ORDER_H_
