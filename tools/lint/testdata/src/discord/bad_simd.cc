// Fixture: SIMD intrinsics outside src/backend/. Expected simd-intrinsics
// findings: 6 (x86 header, NEON header, two x86 intrinsic call lines, the
// NEON vector-type line, and a NEON store line). Prose mentions of
// _mm256_add_pd in comments and strings must not fire, and neither must
// the suppressed line.
#include <immintrin.h>  // finding: vector-intrinsics header
#include <arm_neon.h>   // finding: vector-intrinsics header

#include <cstddef>

namespace gva {

// A comment mentioning _mm256_fmadd_pd or vfmaq_f64 is fine: ProseIsFine.
const char* kDoc = "docs may name _mm256_loadu_pd too";

double HandRolledAvx2Sum(const double* p, size_t n) {
  __m256d acc = _mm256_setzero_pd();  // finding: x86 intrinsic
  for (size_t i = 0; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(p + i));  // finding: intrinsic
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);  // gva-lint: allow(simd-intrinsics)
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

double HandRolledNeonSum(const double* p, size_t n) {
  double out = 0.0;
  for (size_t i = 0; i + 2 <= n; i += 2) {
    float64x2_t v = vaddq_f64(vld1q_f64(p + i), vdupq_n_f64(0.0));  // finding
    double lanes[2];
    vst1q_f64(lanes, v);  // finding: NEON store intrinsic
    out += lanes[0] + lanes[1];
  }
  return out;
}

}  // namespace gva
