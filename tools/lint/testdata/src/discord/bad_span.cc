// Fixture: GVA_OBS_SPAN naming violations. Expected span-naming findings: 3
// (undotted name, uppercase name, non-literal name).
#include <string>

#define GVA_OBS_SPAN(name) (void)(name)

namespace gva {

void Search(const std::string& dynamic_name) {
  GVA_OBS_SPAN("induce");                    // finding: no subsystem dot
  GVA_OBS_SPAN("Grammar.Induce");            // finding: not lowercase
  GVA_OBS_SPAN(dynamic_name.c_str());        // finding: not a literal
  GVA_OBS_SPAN("grammar.sequitur.induce");   // ok: dotted lowercase
  GVA_OBS_SPAN("search.rra_round.chunk");    // ok: underscores allowed
  GVA_OBS_SPAN("X.y");  // gva-lint: allow(span-naming)
}

}  // namespace gva
