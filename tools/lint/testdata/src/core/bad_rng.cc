// Fixture: every determinism-rng pattern must be flagged in a deterministic
// subsystem (fake src/core). Expected findings: 5.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace gva {

double NondeterministicScore() {
  double score = static_cast<double>(rand());          // finding: rand()
  std::srand(42);                                      // finding: srand()
  score += static_cast<double>(time(nullptr));         // finding: time()
  auto now = std::chrono::system_clock::now();         // finding: system_clock
  std::random_device rd;                               // finding: random_device
  score += static_cast<double>(rd());
  score += static_cast<double>(now.time_since_epoch().count());
  return score;
}

double SuppressedScore() {
  // A documented exception must not be flagged.
  return static_cast<double>(rand());  // gva-lint: allow(determinism-rng)
}

void ProseIsFine() {
  // Mentioning rand() or time(nullptr) in a comment is not a finding, and
  // neither is a string: ("rand()").
  const char* label = "rand() time(nullptr) system_clock";
  (void)label;
}

}  // namespace gva
