// Fixture: monotonic-clock reads in a deterministic subsystem (fake
// src/core streaming path) must be flagged — time-driven eviction or report
// cadence makes stream replay diverge from the batch result. Expected
// findings: 2.
#include <chrono>

namespace gva {

bool ShouldReportByWallClock(long last_ns) {
  // finding: steady_clock — report cadence must count samples, not seconds.
  return std::chrono::steady_clock::now().time_since_epoch().count() -
             last_ns >
         5000000000L;
}

long TimestampForEviction() {
  // finding: high_resolution_clock
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}

long SuppressedObservabilityTiming() {
  // A documented observability-only exception must not be flagged.
  return std::chrono::steady_clock::now()  // gva-lint: allow(determinism-rng)
      .time_since_epoch()
      .count();
}

void ProseIsFine() {
  // Mentioning std::chrono::steady_clock in a comment is not a finding.
  const char* label = "std::chrono::steady_clock";
  (void)label;
}

}  // namespace gva
