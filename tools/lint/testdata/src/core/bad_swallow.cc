// Fixture: error-Status values discarded without examination must be
// flagged — the streaming example once swallowed every Report() failure as
// "not enough data yet". Expected findings: 2.

namespace gva {

struct FakeStatus {
  bool ok() const { return false; }
  int code() const { return 9; }
};

struct FakeResult {
  FakeStatus status() const { return {}; }
  bool ok() const { return false; }
};

int SwallowsInLoop(const FakeResult& report) {
  for (int i = 0; i < 3; ++i) {
    if (!report.ok()) {  // finding: error dropped with bare continue
      continue;
    }
  }
  return 0;
}

int SwallowsWithReturn(const FakeResult& report) {
  if (!report.ok()) {  // finding: error dropped with bare return 0
    return 0;
  }
  return 1;
}

int ExaminedIsFine(const FakeResult& report) {
  for (int i = 0; i < 3; ++i) {
    if (!report.ok()) {
      if (report.status().code() == 9) {  // benign case identified
        continue;
      }
      return 1;  // everything else fails loudly
    }
  }
  return 0;
}

int PropagatedIsFine(const FakeResult& report) {
  if (!report.ok()) {
    return report.status().code();
  }
  return 0;
}

int SuppressedIsFine(const FakeResult& report) {
  for (int i = 0; i < 3; ++i) {
    if (!report.ok()) {
      // Documented: this probe is best-effort; all failures are ignorable.
      continue;  // gva-lint: allow(status-swallow)
    }
  }
  return 0;
}

}  // namespace gva
