// Fixture: iteration over unordered containers in a deterministic subsystem
// (fake src/core). Expected unordered-iteration findings: 3.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gva {

struct ScoreState {
  std::unordered_map<int, double> per_config;
};

double SumInUnorderedOrder(const std::unordered_set<std::string>& words) {
  std::unordered_map<std::string, double> scores;
  double total = 0.0;
  for (const auto& [word, score] : scores) {  // finding: local map
    total += score;
  }
  for (const std::string& w : words) {  // finding: parameter set
    total += static_cast<double>(w.size());
  }
  return total;
}

double SumMember(const ScoreState& state) {
  double total = 0.0;
  for (const auto& entry : state.per_config) {  // finding: member access
    total += entry.second;
  }
  return total;
}

double OrderedIsFine(const std::unordered_map<int, double>& scores) {
  // Draining through a sorted index vector keeps reductions deterministic.
  std::vector<int> keys;
  keys.reserve(scores.size());
  for (const auto& [k, v] : scores) {  // gva-lint: allow(unordered-iteration)
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  double total = 0.0;
  for (int k : keys) {
    total += scores.at(k);
  }
  return total;
}

}  // namespace gva
