// Fixture: bare CHECK/DCHECK macros in a shipped header. Expected
// check-in-header findings: 3. GVA_-prefixed macros are fine.
#ifndef GVA_LINT_TESTDATA_BAD_CHECK_H_
#define GVA_LINT_TESTDATA_BAD_CHECK_H_

#define GVA_CHECK(c) (void)(c)
#define GVA_CHECK_LT(a, b) (void)((a) < (b))

namespace gva {

inline int Pick(int i, int n) {
  CHECK(i >= 0);         // finding: bare CHECK in header
  CHECK_LT(i, n);        // finding: bare CHECK_LT in header
  DCHECK(n > 0);         // finding: bare DCHECK in header
  GVA_CHECK(i >= 0);     // ok: namespaced
  GVA_CHECK_LT(i, n);    // ok: namespaced
  CHECK(n < 100);        // gva-lint: allow(check-in-header)
  return i;
}

}  // namespace gva

#endif  // GVA_LINT_TESTDATA_BAD_CHECK_H_
