#!/usr/bin/env python3
"""Self-test for gva_lint.py: every rule must fire on its seeded fixture
(the deliberately-violating files under testdata/src/) and stay quiet on the
clean fixture. Run directly or via `ctest -L lint`."""

from __future__ import annotations

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import gva_lint  # noqa: E402

TESTDATA = os.path.join(os.path.dirname(os.path.abspath(__file__)), "testdata")


def findings_for(rel_path: str) -> list[gva_lint.Finding]:
    full = os.path.join(TESTDATA, rel_path)
    return gva_lint.lint_file(full, rel_path)


def rules_of(findings: list[gva_lint.Finding]) -> list[str]:
    return [f.rule for f in findings]


class DeterminismRngRule(unittest.TestCase):
    def test_every_pattern_fires_once(self) -> None:
        findings = findings_for("src/core/bad_rng.cc")
        self.assertEqual(rules_of(findings), ["determinism-rng"] * 5)
        messages = "\n".join(f.message for f in findings)
        for label in ("rand()", "srand()", "time(nullptr)",
                      "std::chrono::system_clock", "std::random_device"):
            self.assertIn(label, messages)

    def test_suppression_and_prose_do_not_fire(self) -> None:
        findings = findings_for("src/core/bad_rng.cc")
        flagged_lines = {f.line for f in findings}
        lines = open(os.path.join(TESTDATA, "src/core/bad_rng.cc"),
                     encoding="utf-8").read().splitlines()
        for i, line in enumerate(lines, 1):
            if "allow(determinism-rng)" in line or "ProseIsFine" in line:
                self.assertNotIn(i, flagged_lines)

    def test_outside_deterministic_dirs_is_exempt(self) -> None:
        # The same content under src/viz (not a scored subsystem) is legal.
        full = os.path.join(TESTDATA, "src/core/bad_rng.cc")
        lines = open(full, encoding="utf-8").read().splitlines()
        self.assertEqual(
            gva_lint.check_determinism_rng(full, "src/viz/bad_rng.cc", lines),
            [])


class DeterminismClockRule(unittest.TestCase):
    """Monotonic clocks in streaming/scoring paths: time-driven decisions
    (report cadence, eviction) make stream replay diverge from batch."""

    def test_monotonic_clocks_fire(self) -> None:
        findings = findings_for("src/core/bad_stream_clock.cc")
        self.assertEqual(rules_of(findings), ["determinism-rng"] * 2)
        messages = "\n".join(f.message for f in findings)
        self.assertIn("std::chrono::steady_clock", messages)
        self.assertIn("std::chrono::high_resolution_clock", messages)

    def test_observability_waiver_and_prose_do_not_fire(self) -> None:
        findings = findings_for("src/core/bad_stream_clock.cc")
        flagged_lines = {f.line for f in findings}
        lines = open(os.path.join(TESTDATA, "src/core/bad_stream_clock.cc"),
                     encoding="utf-8").read().splitlines()
        for i, line in enumerate(lines, 1):
            if "allow(determinism-rng)" in line or "ProseIsFine" in line:
                self.assertNotIn(i, flagged_lines)

    def test_streaming_sources_stay_clean(self) -> None:
        # The real streaming engine must never need a clock waiver: its
        # cadence and eviction are sample-counted, not time-driven.
        root = os.path.normpath(os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", ".."))
        for rel in ("src/core/streaming.cc", "src/core/streaming.h",
                    "src/sax/sax_transform.cc", "src/sax/sax_transform.h"):
            full = os.path.join(root, rel)
            lines = open(full, encoding="utf-8").read().splitlines()
            self.assertEqual(
                gva_lint.check_determinism_rng(full, rel, lines), [],
                f"{rel} must not read wall clocks")


class UnorderedIterationRule(unittest.TestCase):
    def test_local_param_and_member_all_fire(self) -> None:
        findings = findings_for("src/core/bad_unordered.cc")
        self.assertEqual(rules_of(findings), ["unordered-iteration"] * 3)

    def test_suppressed_line_does_not_fire(self) -> None:
        findings = findings_for("src/core/bad_unordered.cc")
        lines = open(os.path.join(TESTDATA, "src/core/bad_unordered.cc"),
                     encoding="utf-8").read().splitlines()
        for f in findings:
            self.assertNotIn("allow(unordered-iteration)", lines[f.line - 1])


class StatusSwallowRule(unittest.TestCase):
    """Discarding an error Status without examining it: the streaming
    example's pre-fix `if (!report.ok()) continue;` bug class."""

    def test_bare_discards_fire(self) -> None:
        findings = findings_for("src/core/bad_swallow.cc")
        self.assertEqual(rules_of(findings), ["status-swallow"] * 2)

    def test_examined_propagated_and_suppressed_do_not_fire(self) -> None:
        findings = findings_for("src/core/bad_swallow.cc")
        flagged_lines = {f.line for f in findings}
        lines = open(os.path.join(TESTDATA, "src/core/bad_swallow.cc"),
                     encoding="utf-8").read().splitlines()
        for i, line in enumerate(lines, 1):
            if ("IsFine" in line or "status().code()" in line
                    or "allow(status-swallow)" in line):
                self.assertNotIn(i, flagged_lines)

    def test_the_fixed_example_stays_clean(self) -> None:
        # The regression pin for the examples/streaming_monitor.cpp bugfix:
        # the pre-fix source (blanket `if (!report.ok()) continue;`) is
        # exactly what this rule flags, so reintroducing it fails
        # lint.gva_lint (the examples/ tree is on the default surface).
        root = os.path.normpath(os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", ".."))
        rel = "examples/streaming_monitor.cpp"
        full = os.path.join(root, rel)
        lines = open(full, encoding="utf-8").read().splitlines()
        self.assertEqual(gva_lint.check_status_swallow(full, rel, lines), [])
        pre_fix = [
            "    auto report = monitor->Report();",
            "    if (!report.ok()) {",
            "      continue;  // not enough data yet",
            "    }",
        ]
        self.assertEqual(
            [f.rule for f in gva_lint.check_status_swallow(
                full, rel, pre_fix)],
            ["status-swallow"])


class SpanNamingRule(unittest.TestCase):
    def test_bad_names_and_non_literal_fire(self) -> None:
        findings = findings_for("src/discord/bad_span.cc")
        self.assertEqual(rules_of(findings), ["span-naming"] * 3)
        messages = "\n".join(f.message for f in findings)
        self.assertIn('"induce"', messages)
        self.assertIn('"Grammar.Induce"', messages)
        self.assertIn("string literal", messages)


class CheckInHeaderRule(unittest.TestCase):
    def test_bare_check_family_fires_in_header(self) -> None:
        findings = findings_for("src/grammar/bad_check.h")
        self.assertEqual(rules_of(findings), ["check-in-header"] * 3)

    def test_cc_files_are_exempt(self) -> None:
        full = os.path.join(TESTDATA, "src/grammar/bad_check.h")
        lines = open(full, encoding="utf-8").read().splitlines()
        self.assertEqual(
            gva_lint.check_check_in_header(full, "src/grammar/bad_check.cc",
                                           lines),
            [])


class IncludeHygieneRules(unittest.TestCase):
    def test_self_include_not_first_fires(self) -> None:
        findings = findings_for("src/sax/bad_include_order.cc")
        self.assertEqual(rules_of(findings), ["include-self-first"])
        self.assertIn("bad_include_order.h", findings[0].message)

    def test_bits_include_fires(self) -> None:
        findings = findings_for("src/timeseries/bad_bits.cc")
        self.assertEqual(rules_of(findings), ["include-bits"])


class SimdIntrinsicsRule(unittest.TestCase):
    """ISA-specific code outside src/backend/ bypasses the runtime
    capability gate and the per-file ISA compile flags."""

    def test_headers_intrinsics_and_types_fire(self) -> None:
        findings = findings_for("src/discord/bad_simd.cc")
        self.assertEqual(rules_of(findings), ["simd-intrinsics"] * 6)
        messages = "\n".join(f.message for f in findings)
        self.assertIn("vector-intrinsics header", messages)
        self.assertIn("x86 vector", messages)
        self.assertIn("NEON vector", messages)

    def test_prose_strings_and_suppression_do_not_fire(self) -> None:
        findings = findings_for("src/discord/bad_simd.cc")
        flagged_lines = {f.line for f in findings}
        lines = open(os.path.join(TESTDATA, "src/discord/bad_simd.cc"),
                     encoding="utf-8").read().splitlines()
        for i, line in enumerate(lines, 1):
            if ("ProseIsFine" in line or "kDoc" in line
                    or "allow(simd-intrinsics)" in line):
                self.assertNotIn(i, flagged_lines)

    def test_backend_tree_is_exempt(self) -> None:
        # The identical content under src/backend/ is the one legal home.
        full = os.path.join(TESTDATA, "src/discord/bad_simd.cc")
        lines = open(full, encoding="utf-8").read().splitlines()
        self.assertEqual(
            gva_lint.check_simd_intrinsics(full, "src/backend/simd.cc",
                                           lines),
            [])

    def test_real_backend_sources_are_the_only_intrinsic_users(self) -> None:
        # The dispatch refactor's point: nothing outside src/backend/ in the
        # real tree touches an intrinsic, so the default lint surface stays
        # clean without suppressions.
        root = os.path.normpath(os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", ".."))
        for rel in ("src/discord/distance.cc", "src/sax/sax_transform.cc",
                    "examples/gva_cli.cpp"):
            full = os.path.join(root, rel)
            lines = open(full, encoding="utf-8").read().splitlines()
            self.assertEqual(
                gva_lint.check_simd_intrinsics(full, rel, lines), [],
                f"{rel} must dispatch through backend::ActiveBackend()")


class SignalSafetyRule(unittest.TestCase):
    """Allocation, stdio, or locks inside a *SignalHandler* function: the
    flight recorder's fatal-signal dump runs in async-signal context where
    only write/open/close/raise are legal."""

    def test_alloc_stdio_and_lock_fire(self) -> None:
        findings = findings_for("src/obs/bad_signal_handler.cc")
        self.assertEqual(rules_of(findings), ["signal-safety"] * 4)
        messages = "\n".join(f.message for f in findings)
        self.assertIn("allocating std type", messages)
        self.assertIn("stdio call", messages)
        self.assertIn("heap allocation", messages)
        self.assertIn("lock primitive", messages)
        for f in findings:
            self.assertIn("CrashSignalHandler", f.message)

    def test_safe_suppressed_and_non_handler_do_not_fire(self) -> None:
        findings = findings_for("src/obs/bad_signal_handler.cc")
        flagged_lines = {f.line for f in findings}
        full = os.path.join(TESTDATA, "src/obs/bad_signal_handler.cc")
        lines = open(full, encoding="utf-8").read().splitlines()
        in_crash = False
        for i, line in enumerate(lines, 1):
            if "CrashSignalHandler" in line:
                in_crash = True
            elif line.startswith("void "):
                in_crash = False
            if not in_crash:
                self.assertNotIn(i, flagged_lines,
                                 f"line {i} flagged outside the bad handler")

    def test_tests_tree_is_exempt(self) -> None:
        full = os.path.join(TESTDATA, "src/obs/bad_signal_handler.cc")
        lines = open(full, encoding="utf-8").read().splitlines()
        self.assertEqual(
            gva_lint.check_signal_safety(
                full, "tests/obs/bad_signal_handler.cc", lines),
            [])

    def test_real_flight_handler_is_clean(self) -> None:
        # The regression pin for src/obs/recorder.cc: its fatal-signal
        # handler promises (in a comment) that this rule machine-checks it.
        root = os.path.normpath(os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", ".."))
        rel = "src/obs/recorder.cc"
        full = os.path.join(root, rel)
        lines = open(full, encoding="utf-8").read().splitlines()
        self.assertEqual(gva_lint.check_signal_safety(full, rel, lines), [],
                         "the flight-dump signal handler must stay "
                         "async-signal-safe")
        # And the rule genuinely watches that file: seeding a printf into
        # the handler body is caught.
        seeded = []
        for line in lines:
            seeded.append(line)
            if "void FlightSignalHandler(int signum) {" in line:
                seeded.append('  std::printf("crash\\n");')
        self.assertEqual(
            [f.rule for f in gva_lint.check_signal_safety(
                full, rel, seeded)],
            ["signal-safety"])


class CleanFixture(unittest.TestCase):
    def test_clean_pair_has_no_findings(self) -> None:
        self.assertEqual(findings_for("src/ensemble/clean.cc"), [])
        self.assertEqual(findings_for("src/ensemble/clean.h"), [])


class DriverBehaviour(unittest.TestCase):
    def test_main_exit_codes(self) -> None:
        # Over the violating fixture tree: findings, exit 1.
        self.assertEqual(gva_lint.main(["--root", TESTDATA, "src"]), 1)
        # Over the clean subtree only: exit 0.
        self.assertEqual(
            gva_lint.main(["--root", TESTDATA, "src/ensemble"]), 0)

    def test_fixture_tree_total(self) -> None:
        # One place asserting the full seeded-violation inventory: if a rule
        # regresses to never firing, this count drops and the suite fails.
        total = []
        for dirpath, _, filenames in os.walk(os.path.join(TESTDATA, "src")):
            for name in sorted(filenames):
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, TESTDATA)
                total.extend(gva_lint.lint_file(full, rel))
        by_rule: dict[str, int] = {}
        for f in total:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        self.assertEqual(by_rule, {
            "determinism-rng": 7,
            "unordered-iteration": 3,
            "status-swallow": 2,
            "span-naming": 3,
            "check-in-header": 3,
            "include-self-first": 1,
            "include-bits": 1,
            "simd-intrinsics": 6,
            "signal-safety": 4,
        })


if __name__ == "__main__":
    unittest.main()
