#!/usr/bin/env python3
"""Check-only formatting gate (never rewrites files).

    python3 tools/lint/format_check.py [--root REPO_ROOT] [paths...]

With clang-format on PATH, every file is checked against the repo's
.clang-format via --dry-run; any would-be replacement is a finding. Without
clang-format the script falls back to the style invariants the tree already
holds and that matter for diffs staying reviewable:

    * no tab characters (2-space indent everywhere)
    * no trailing whitespace
    * LF line endings (no CRLF)
    * file ends with exactly one newline
    * lines are at most 80 columns

Exit 0 when clean, 1 with findings printed per line. Unlike the clang-tidy
runner there is no skip code: the fallback always enforces something, so
the `lint` ctest label keeps a formatting gate on machines without LLVM.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys

SOURCE_EXTENSIONS = (".cc", ".cpp", ".h", ".hpp")
MAX_COLUMNS = 80


def find_clang_format() -> str | None:
    for candidate in ("clang-format", "clang-format-18", "clang-format-17",
                      "clang-format-16", "clang-format-15", "clang-format-14"):
        if shutil.which(candidate):
            return candidate
    return None


def collect_files(root: str, paths: list[str]) -> list[str]:
    out = []
    for p in paths:
        absolute = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(absolute):
            out.append(absolute)
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    out.append(os.path.join(dirpath, name))
    return out


def check_with_clang_format(binary: str, root: str,
                            files: list[str]) -> list[str]:
    findings = []
    for path in files:
        proc = subprocess.run(
            [binary, "--style=file", "--dry-run", "-Werror", path],
            capture_output=True, text=True, cwd=root)
        if proc.returncode != 0:
            rel = os.path.relpath(path, root)
            first = (proc.stderr.strip().splitlines() or ["(no output)"])[0]
            findings.append(f"{rel}: not clang-format clean: {first}")
    return findings


def check_builtin(root: str, files: list[str]) -> list[str]:
    findings = []
    for path in files:
        rel = os.path.relpath(path, root)
        with open(path, "rb") as f:
            raw = f.read()
        if b"\r" in raw:
            findings.append(f"{rel}: CRLF line ending")
        if raw and not raw.endswith(b"\n"):
            findings.append(f"{rel}: missing final newline")
        if raw.endswith(b"\n\n"):
            findings.append(f"{rel}: trailing blank line(s) at EOF")
        for i, line in enumerate(raw.decode("utf-8", "replace")
                                 .splitlines(), 1):
            if "\t" in line:
                findings.append(f"{rel}:{i}: tab character (indent is "
                                "2 spaces)")
            if line != line.rstrip():
                findings.append(f"{rel}:{i}: trailing whitespace")
            if len(line) > MAX_COLUMNS:
                findings.append(f"{rel}:{i}: {len(line)} columns "
                                f"(limit {MAX_COLUMNS})")
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None)
    parser.add_argument("--builtin-only", action="store_true",
                        help="skip clang-format even if installed (used by "
                             "format_check's own tests)")
    parser.add_argument("paths", nargs="*")
    args = parser.parse_args()

    root = args.root or os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    paths = args.paths or ["src", "tests", "bench", "examples"]
    files = collect_files(root, paths)

    binary = None if args.builtin_only else find_clang_format()
    if binary:
        findings = check_with_clang_format(binary, root, files)
        mode = f"clang-format ({binary})"
    else:
        findings = check_builtin(root, files)
        mode = "builtin fallback (clang-format not installed)"

    for finding in findings:
        print(finding)
    if findings:
        print(f"format_check[{mode}]: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"format_check[{mode}]: clean ({len(files)} files)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
