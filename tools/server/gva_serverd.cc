// gva_serverd — the multi-tenant anomaly-detection daemon (DESIGN.md §13).
//
//   gva_serverd [--port N] [--bind ADDR] [--slots N] [--queue N]
//               [--job-threads N] [--max-streams N] [--quiet]
//
// Serves the /v1 job and stream API plus the shared telemetry surface
// (/metrics, /metrics.json, /healthz, /flightz) on one listener. Jobs run
// on a fixed slot pool behind a bounded FIFO queue; when the queue is full
// submissions get 429 + Retry-After. See README.md "Server quickstart" for
// the curl walkthrough.
//
//   --port N        TCP port (default 0 = ephemeral; the bound port is
//                   printed on the "listening on" line)
//   --bind ADDR     bind address (default 127.0.0.1; the API is plaintext
//                   and unauthenticated — exposing it wider is on you)
//   --slots N       concurrent job slots (default 2)
//   --queue N       queued-job capacity behind the slots (default 8)
//   --job-threads N per-job worker-thread clamp (default 4)
//   --max-streams N live streaming-session cap (default 64)
//   --quiet         print only the "listening on" line
//
// Shutdown: SIGINT/SIGTERM, or POST /v1/admin/shutdown. Both paths drain
// through AnomalyServer::Stop() so in-flight responses flush and the job
// workers join.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "net/server.h"
#include "obs/recorder.h"

namespace {

int g_signal_pipe_write = -1;

// Async-signal-safe by construction: one write(2) to the self-pipe; main's
// poll loop does the actual shutdown on the normal stack.
extern "C" void ServerdSignalHandler(int /*signum*/) {
  if (g_signal_pipe_write >= 0) {
    const ssize_t written = ::write(g_signal_pipe_write, "s", 1);
    (void)written;
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: gva_serverd [--port N] [--bind ADDR] [--slots N] "
               "[--queue N] [--job-threads N] [--max-streams N] [--quiet]\n");
  return 2;
}

bool ParseSize(const char* text, size_t* out) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = static_cast<size_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  gva::net::AnomalyServerOptions options;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--quiet") {
      quiet = true;
      continue;
    }
    if (i + 1 >= argc) {
      return Usage();
    }
    const char* value = argv[++i];
    size_t parsed = 0;
    if (flag == "--bind") {
      options.bind_address = value;
      continue;
    }
    if (!ParseSize(value, &parsed)) {
      return Usage();
    }
    if (flag == "--port" && parsed <= 65535) {
      options.port = static_cast<uint16_t>(parsed);
    } else if (flag == "--slots") {
      options.runner.slots = parsed;
    } else if (flag == "--queue") {
      options.runner.queue_capacity = parsed;
    } else if (flag == "--job-threads") {
      options.runner.max_threads_per_job = parsed;
    } else if (flag == "--max-streams") {
      options.max_streams = parsed;
    } else {
      return Usage();
    }
  }

  // A client that disconnects mid-response must cost us an EPIPE errno,
  // not a process death.
  std::signal(SIGPIPE, SIG_IGN);
  // Fatal-signal post-mortem: dump the span flight recorder, same as the
  // CLI.
  gva::obs::InstallFlightSignalHandler();

  auto server = gva::net::AnomalyServer::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  // CI's smoke test parses the port out of this exact line; keep it first
  // and keep it flushed.
  std::printf("gva_serverd listening on http://%s:%u\n",
              options.bind_address.c_str(),
              static_cast<unsigned>((*server)->port()));
  std::fflush(stdout);
  if (!quiet) {
    std::printf("slots=%zu queue=%zu job-threads=%zu max-streams=%zu\n",
                options.runner.slots, options.runner.queue_capacity,
                options.runner.max_threads_per_job, options.max_streams);
    std::fflush(stdout);
  }

  int signal_pipe[2];
  if (::pipe(signal_pipe) != 0) {
    std::fprintf(stderr, "cannot create signal pipe\n");
    return 1;
  }
  g_signal_pipe_write = signal_pipe[1];
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = ServerdSignalHandler;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  // Block until a signal or an admin shutdown request lands.
  pollfd fds[2];
  fds[0].fd = signal_pipe[0];
  fds[0].events = POLLIN;
  fds[1].fd = (*server)->shutdown_event_fd();
  fds[1].events = POLLIN;
  while (true) {
    fds[0].revents = 0;
    fds[1].revents = 0;
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0 && errno == EINTR) {
      continue;  // the handler's pipe write will show up on the next poll
    }
    if (ready > 0) {
      break;
    }
  }
  if (!quiet) {
    std::printf("shutting down (%s)\n",
                (fds[1].revents & POLLIN) != 0 ? "admin request" : "signal");
    std::fflush(stdout);
  }
  (*server)->Stop();
  ::close(signal_pipe[0]);
  ::close(signal_pipe[1]);
  return 0;
}
